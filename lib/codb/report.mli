(** Aggregation of node statistics into the super-peer's final report
    (paper, Section 4: "the super-peer processes all incoming
    statistical messages, aggregates them and creates a final
    statistical report"). *)

type update_report = {
  ur_update : Ids.update_id;
  ur_nodes : int;  (** nodes that participated *)
  ur_all_finished : bool;
  ur_started : float;  (** earliest start across nodes *)
  ur_finished : float;  (** latest finish across nodes *)
  ur_duration : float;
  ur_data_msgs : int;
  ur_control_msgs : int;
  ur_bytes : int;  (** data bytes received, network-wide *)
  ur_new_tuples : int;
  ur_dup_suppressed : int;
  ur_nulls : int;
  ur_longest_path : int;
  ur_probes : int;
  ur_scans : int;
  ur_zvisited : int;  (** zone-map chunks consulted network-wide *)
  ur_zpruned : int;  (** zone-map chunks skipped network-wide *)
  ur_batches : int;  (** [Update_batch] messages network-wide *)
  ur_batch_tuples : int;  (** tuples shipped inside batches *)
  ur_coalesced : int;  (** tuples that never hit the wire *)
  ur_resends : int;  (** bound on sent-filter-induced re-sends *)
  ur_cache_staled : int;  (** query-cache entries staled at finalize *)
  ur_per_rule : Stats.rule_traffic_snap list;  (** merged by rule id *)
}

val update_report : Stats.snapshot list -> Ids.update_id -> update_report option
(** [None] when no snapshot mentions the update. *)

val latest_update_report : Stats.snapshot list -> update_report option
(** The report of the most recently started update in the snapshots. *)

val pp_update_report : update_report Fmt.t

(** {1 Wire behaviour} *)

(** The propagation-layer view of one update: message/batch shape,
    in-window coalescing, bounded-filter resends and the cache churn
    the flood caused — what the E15 ablation and the [wire] CLI
    surface report. *)
type wire_report = {
  wr_update : Ids.update_id;
  wr_data_msgs : int;
  wr_batches : int;
  wr_batch_tuples : int;
  wr_avg_batch : float;  (** tuples per batch, 0 without batching *)
  wr_coalesced : int;
  wr_resends : int;
  wr_cache_staled : int;
  wr_bytes : int;
}

val wire_report : Stats.snapshot list -> Ids.update_id -> wire_report option

val pp_wire_report : wire_report Fmt.t

(** {1 Cache effectiveness} *)

type cache_report_row = {
  cr_node : Codb_net.Peer_id.t;
  cr_hits : int;  (** exact + containment *)
  cr_misses : int;
  cr_ratio : float;  (** hits / lookups, 0 with no lookups *)
  cr_bytes_served : int;
  cr_invalidations : int;
  cr_entries : int;  (** live entries at snapshot time *)
}

val cache_report : Stats.snapshot list -> cache_report_row list
(** One row per node whose snapshot carries cache counters (i.e. per
    node with caching enabled); empty when caching is off
    network-wide. *)

val pp_cache_report : cache_report_row list Fmt.t

(** {1 Constraint pushdown} *)

(** Network-wide view of one query's relevance-bounded diffusion: how
    many sub-requests carried constraints, how much the responders
    withheld before the wire, and what the rule cache absorbed — the
    E17 surface. *)
type pushdown_report = {
  pr_query : Ids.query_id;
  pr_pushed : int;  (** sub-requests that carried a non-trivial constraint *)
  pr_filtered_at_source : int;  (** derived tuples withheld before the wire *)
  pr_rule_cache_hits : int;  (** sub-requests served from the rule cache *)
  pr_bytes_in : int;  (** answer bytes received, network-wide *)
  pr_data_msgs : int;
}

val pushdown_report : Stats.snapshot list -> Ids.query_id -> pushdown_report option

val pp_pushdown_report : pushdown_report Fmt.t

(** {1 Standing queries} *)

(** Network-wide aggregation of the subscription counters: how much
    standing-query maintenance cost (evaluator work, push traffic) and
    what it delivered — the E18 surface and the [sub] CLI report. *)
type sub_report = {
  sr_registered : int;
  sr_rejected : int;
  sr_deltas_in : int;  (** store deltas fed to hosted subscriptions *)
  sr_prefiltered : int;  (** delta tuples dropped by pushed constraints *)
  sr_deltas_out : int;  (** non-empty answer deltas delivered *)
  sr_push_msgs : int;  (** [Answer_delta]/[Answer_batch] messages sent *)
  sr_adds : int;
  sr_retracts : int;
  sr_bytes : int;  (** push bytes as charged by the network *)
  sr_coalesced : int;  (** answer tuples absorbed in the batch window *)
  sr_probes : int;  (** evaluator probes spent maintaining answers *)
  sr_scans : int;
  sr_zvisited : int;  (** zone-map chunks consulted during maintenance *)
  sr_zpruned : int;  (** zone-map chunks skipped during maintenance *)
  sr_cache_staled : int;  (** query-cache entries staled by deliveries *)
  sr_torn_down : int;  (** subscriptions/mirrors lost to crashes *)
  sr_rearmed : int;  (** mirrors re-registered after a host restart *)
  sr_bytes_per_answer : float;  (** bytes / (adds + retracts), 0 if none *)
}

val sub_report : Stats.snapshot list -> sub_report

val pp_sub_report : sub_report Fmt.t

val pp_network : Stats.snapshot list Fmt.t
(** Full per-node dump, the super-peer's final report body. *)

(** {1 Fault tolerance} *)

(** Network-wide aggregation of the transport and partial-answer
    counters (the [chaos] CLI surface and bench E16). *)
type chaos_report = {
  chr_retransmits : int;
  chr_dup_suppressed : int;
  chr_give_ups : int;
  chr_query_timeouts : int;
  chr_partial_answers : int;
  chr_forced_terminations : int;
  chr_send_drops : int;
  chr_incomplete_queries : int;
      (** per-query records that finished flagged incomplete *)
  chr_forced_updates : int;  (** per-update records marked forced *)
  chr_recovered_records : int;  (** WAL records replayed at restarts *)
  chr_replayed_bytes : int;
      (** snapshot + log bytes consumed by recovery *)
  chr_refetched_bytes : int;
      (** post-restart bytes re-fetching once-held state *)
}

val chaos_report : Stats.snapshot list -> chaos_report

val pp_chaos_report : chaos_report Fmt.t
