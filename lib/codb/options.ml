type t = {
  use_sent_cache : bool;
  use_subsumption_dedup : bool;
  naive_delta : bool;
  latency : float;
  byte_cost : float;
  max_update_events : int;
  use_query_cache : bool;
  cache_capacity : int;
  cache_max_bytes : int;
  cache_ttl : float;
  cache_containment : bool;
  planner : bool;
  index_budget : int;
}

let default =
  {
    use_sent_cache = true;
    use_subsumption_dedup = true;
    naive_delta = false;
    latency = 0.001;
    byte_cost = 0.000001;
    max_update_events = 2_000_000;
    use_query_cache = false;
    cache_capacity = 128;
    cache_max_bytes = 4 * 1024 * 1024;
    cache_ttl = 0.0;
    cache_containment = true;
    planner = true;
    index_budget = 16;
  }

let with_cache =
  { default with use_query_cache = true }

let validate t =
  let errors = ref [] in
  let reject message = errors := message :: !errors in
  if t.latency < 0.0 then
    reject (Printf.sprintf "options: latency must be >= 0 (got %g)" t.latency);
  if t.byte_cost < 0.0 then
    reject (Printf.sprintf "options: byte_cost must be >= 0 (got %g)" t.byte_cost);
  if t.max_update_events <= 0 then
    reject
      (Printf.sprintf "options: max_update_events must be positive (got %d)"
         t.max_update_events);
  if t.cache_capacity < 0 then
    reject (Printf.sprintf "options: cache_capacity must be >= 0 (got %d)" t.cache_capacity);
  if t.cache_max_bytes < 0 then
    reject
      (Printf.sprintf "options: cache_max_bytes must be >= 0 (got %d)" t.cache_max_bytes);
  if t.cache_ttl < 0.0 then
    reject (Printf.sprintf "options: cache_ttl must be >= 0 (got %g)" t.cache_ttl);
  if t.index_budget < 0 then
    reject
      (Printf.sprintf "options: index_budget must be >= 0 (got %d)" t.index_budget);
  match List.rev !errors with [] -> Ok () | errors -> Error errors
