(* What a crash destroys.  [Dur_off] keeps PR 4's lenient model (the
   store and transport state survive in memory).  [Dur_volatile] is an
   honest crash — everything volatile is really lost and restart
   re-fetches the world.  [Dur_wal] is an honest crash plus a
   write-ahead log and snapshots to recover from. *)
type durability = Dur_off | Dur_volatile | Dur_wal

type t = {
  use_sent_cache : bool;
  use_subsumption_dedup : bool;
  naive_delta : bool;
  latency : float;
  byte_cost : float;
  max_update_events : int;
  use_query_cache : bool;
  cache_capacity : int;
  cache_max_bytes : int;
  cache_ttl : float;
  cache_containment : bool;
  planner : bool;
  index_budget : int;
  wire_codec : bool;
  pushdown : bool;
  pushdown_max_preds : int;
  batch_window : float;
  batch_max_tuples : int;
  sent_bloom_bits : int;
  sent_ring_capacity : int;
  fault_seed : int;
  drop_prob : float;
  dup_prob : float;
  jitter : float;
  drop_budget : int;
  flap_plan : (string * string * float * float) list;
  crash_plan : (string * float * float option) list;
  ack_timeout : float;
  max_retries : int;
  backoff_factor : float;
  subscriptions : bool;
  max_subscriptions : int;
  sub_batch_window : float;
  sub_naive : bool;
  domains : int;
  par_threshold : int;
  durability : durability;
  wal_dir : string option;
  snapshot_every : int;
  fsync : bool;
  zone_maps : bool;
  link_dicts : bool;
}

(* The suite-wide parallelism knob: CI runs the whole test suite a
   second time with CODB_DOMAINS=2 without touching a single test.
   Unset, unparsable or < 1 all mean sequential. *)
let domains_from_env () =
  match Sys.getenv_opt "CODB_DOMAINS" with
  | None -> 1
  | Some text -> (
      match int_of_string_opt (String.trim text) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)

let default =
  {
    use_sent_cache = true;
    use_subsumption_dedup = true;
    naive_delta = false;
    latency = 0.001;
    byte_cost = 0.000001;
    max_update_events = 2_000_000;
    use_query_cache = false;
    cache_capacity = 128;
    cache_max_bytes = 4 * 1024 * 1024;
    cache_ttl = 0.0;
    cache_containment = true;
    planner = true;
    index_budget = 16;
    wire_codec = true;
    pushdown = false;
    pushdown_max_preds = 16;
    batch_window = 0.0;
    batch_max_tuples = 256;
    sent_bloom_bits = 0;
    sent_ring_capacity = 512;
    fault_seed = 0;
    drop_prob = 0.0;
    dup_prob = 0.0;
    jitter = 0.0;
    drop_budget = max_int;
    flap_plan = [];
    crash_plan = [];
    ack_timeout = 0.0;
    max_retries = 4;
    backoff_factor = 2.0;
    subscriptions = false;
    max_subscriptions = 64;
    sub_batch_window = 0.0;
    sub_naive = false;
    domains = domains_from_env ();
    par_threshold = 2;
    durability = Dur_off;
    wal_dir = None;
    snapshot_every = 64;
    fsync = false;
    zone_maps = false;
    link_dicts = false;
  }

let with_cache =
  { default with use_query_cache = true }

let validate t =
  let errors = ref [] in
  let reject message = errors := message :: !errors in
  if t.latency < 0.0 then
    reject (Printf.sprintf "options: latency must be >= 0 (got %g)" t.latency);
  if t.byte_cost < 0.0 then
    reject (Printf.sprintf "options: byte_cost must be >= 0 (got %g)" t.byte_cost);
  if t.max_update_events <= 0 then
    reject
      (Printf.sprintf "options: max_update_events must be positive (got %d)"
         t.max_update_events);
  if t.cache_capacity < 0 then
    reject (Printf.sprintf "options: cache_capacity must be >= 0 (got %d)" t.cache_capacity);
  if t.cache_max_bytes < 0 then
    reject
      (Printf.sprintf "options: cache_max_bytes must be >= 0 (got %d)" t.cache_max_bytes);
  if t.cache_ttl < 0.0 then
    reject (Printf.sprintf "options: cache_ttl must be >= 0 (got %g)" t.cache_ttl);
  if t.index_budget < 0 then
    reject
      (Printf.sprintf "options: index_budget must be >= 0 (got %d)" t.index_budget);
  if t.pushdown_max_preds < 1 then
    reject
      (Printf.sprintf "options: pushdown_max_preds must be >= 1 (got %d)"
         t.pushdown_max_preds);
  if t.batch_window < 0.0 then
    reject (Printf.sprintf "options: batch_window must be >= 0 (got %g)" t.batch_window);
  if t.batch_max_tuples < 1 then
    reject
      (Printf.sprintf "options: batch_max_tuples must be >= 1 (got %d)"
         t.batch_max_tuples);
  let max_bloom_bits = 1 lsl 24 in
  let is_power_of_two n = n > 0 && n land (n - 1) = 0 in
  if t.sent_bloom_bits <> 0
     && not (is_power_of_two t.sent_bloom_bits && t.sent_bloom_bits <= max_bloom_bits)
  then
    reject
      (Printf.sprintf
         "options: sent_bloom_bits must be 0 or a power of two <= %d (got %d)"
         max_bloom_bits t.sent_bloom_bits);
  if t.sent_ring_capacity < 1 then
    reject
      (Printf.sprintf "options: sent_ring_capacity must be >= 1 (got %d)"
         t.sent_ring_capacity);
  let prob name v =
    if v < 0.0 || v > 1.0 then
      reject (Printf.sprintf "options: %s must be in [0,1] (got %g)" name v)
  in
  prob "drop_prob" t.drop_prob;
  prob "dup_prob" t.dup_prob;
  if t.jitter < 0.0 then
    reject (Printf.sprintf "options: jitter must be >= 0 (got %g)" t.jitter);
  if t.drop_budget < 0 then
    reject (Printf.sprintf "options: drop_budget must be >= 0 (got %d)" t.drop_budget);
  List.iter
    (fun (a, b, down, up) ->
      if String.equal a b then
        reject (Printf.sprintf "options: flap_plan endpoints must differ (got %s)" a);
      if down < 0.0 || up <= down then
        reject
          (Printf.sprintf
             "options: flap_plan %s-%s must close at >= 0 and reopen later (got %g, %g)"
             a b down up))
    t.flap_plan;
  List.iter
    (fun (name, at, restart) ->
      if at < 0.0 then
        reject (Printf.sprintf "options: crash_plan %s must crash at >= 0 (got %g)" name at);
      match restart with
      | Some r when r <= at ->
          reject
            (Printf.sprintf
               "options: crash_plan %s must restart after it crashes (got %g, %g)" name
               at r)
      | Some _ | None -> ())
    t.crash_plan;
  if t.ack_timeout < 0.0 then
    reject (Printf.sprintf "options: ack_timeout must be >= 0 (got %g)" t.ack_timeout);
  if t.max_retries < 0 then
    reject (Printf.sprintf "options: max_retries must be >= 0 (got %d)" t.max_retries);
  if t.backoff_factor < 1.0 then
    reject
      (Printf.sprintf "options: backoff_factor must be >= 1 (got %g)" t.backoff_factor);
  if t.max_subscriptions < 1 then
    reject
      (Printf.sprintf "options: max_subscriptions must be >= 1 (got %d)"
         t.max_subscriptions);
  if t.sub_batch_window < 0.0 then
    reject
      (Printf.sprintf "options: sub_batch_window must be >= 0 (got %g)"
         t.sub_batch_window);
  if t.sub_naive && not t.subscriptions then
    reject "options: sub_naive requires subscriptions";
  if t.domains < 1 || t.domains > 256 then
    reject (Printf.sprintf "options: domains must be in [1,256] (got %d)" t.domains);
  if t.par_threshold < 1 then
    reject
      (Printf.sprintf "options: par_threshold must be >= 1 (got %d)" t.par_threshold);
  if t.snapshot_every < 1 then
    reject
      (Printf.sprintf "options: snapshot_every must be >= 1 (got %d)" t.snapshot_every);
  (match t.wal_dir with
  | Some "" -> reject "options: wal_dir must not be empty"
  | Some _ when t.durability <> Dur_wal ->
      reject "options: wal_dir requires durability = Dur_wal"
  | Some _ | None -> ());
  if t.fsync && t.wal_dir = None then
    reject "options: fsync requires wal_dir (the in-memory backend has no disk)";
  if t.zone_maps && not t.planner then
    reject "options: zone_maps requires planner (only planned steps carry ranges)";
  if t.link_dicts && not t.wire_codec then
    reject "options: link_dicts requires wire_codec (the estimator has no strings)";
  match List.rev !errors with [] -> Ok () | errors -> Error errors

let faults_enabled t =
  t.drop_prob > 0.0 || t.dup_prob > 0.0 || t.jitter > 0.0 || t.flap_plan <> []
  || t.crash_plan <> []

let reliable t = t.ack_timeout > 0.0

(* Retransmission timeout of the [attempts]-th try.  The exponent is
   capped so pathological (backoff, retries) pairs cannot push timers
   into astronomically distant simulated times. *)
let rto t attempts =
  t.ack_timeout *. Float.min 64.0 (t.backoff_factor ** float_of_int attempts)

let retry_span t =
  let rec sum acc i = if i > t.max_retries then acc else sum (acc +. rto t i) (i + 1) in
  sum 0.0 0

(* Floored so the stall watchdog stays meaningful under fire-and-forget
   transport (ack_timeout = 0 with faults injected): a silent window of
   zero would expire every sub-request before its first response could
   possibly arrive. *)
let failure_deadline t = Float.max 0.25 (retry_span t +. (2.0 *. t.ack_timeout))
