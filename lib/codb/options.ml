type t = {
  use_sent_cache : bool;
  use_subsumption_dedup : bool;
  naive_delta : bool;
  latency : float;
  byte_cost : float;
  max_update_events : int;
}

let default =
  {
    use_sent_cache = true;
    use_subsumption_dedup = true;
    naive_delta = false;
    latency = 0.001;
    byte_cost = 0.000001;
    max_update_events = 2_000_000;
  }
