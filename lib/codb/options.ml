type t = {
  use_sent_cache : bool;
  use_subsumption_dedup : bool;
  naive_delta : bool;
  latency : float;
  byte_cost : float;
  max_update_events : int;
  use_query_cache : bool;
  cache_capacity : int;
  cache_max_bytes : int;
  cache_ttl : float;
  cache_containment : bool;
  planner : bool;
  index_budget : int;
  wire_codec : bool;
  batch_window : float;
  batch_max_tuples : int;
  sent_bloom_bits : int;
  sent_ring_capacity : int;
}

let default =
  {
    use_sent_cache = true;
    use_subsumption_dedup = true;
    naive_delta = false;
    latency = 0.001;
    byte_cost = 0.000001;
    max_update_events = 2_000_000;
    use_query_cache = false;
    cache_capacity = 128;
    cache_max_bytes = 4 * 1024 * 1024;
    cache_ttl = 0.0;
    cache_containment = true;
    planner = true;
    index_budget = 16;
    wire_codec = true;
    batch_window = 0.0;
    batch_max_tuples = 256;
    sent_bloom_bits = 0;
    sent_ring_capacity = 512;
  }

let with_cache =
  { default with use_query_cache = true }

let validate t =
  let errors = ref [] in
  let reject message = errors := message :: !errors in
  if t.latency < 0.0 then
    reject (Printf.sprintf "options: latency must be >= 0 (got %g)" t.latency);
  if t.byte_cost < 0.0 then
    reject (Printf.sprintf "options: byte_cost must be >= 0 (got %g)" t.byte_cost);
  if t.max_update_events <= 0 then
    reject
      (Printf.sprintf "options: max_update_events must be positive (got %d)"
         t.max_update_events);
  if t.cache_capacity < 0 then
    reject (Printf.sprintf "options: cache_capacity must be >= 0 (got %d)" t.cache_capacity);
  if t.cache_max_bytes < 0 then
    reject
      (Printf.sprintf "options: cache_max_bytes must be >= 0 (got %d)" t.cache_max_bytes);
  if t.cache_ttl < 0.0 then
    reject (Printf.sprintf "options: cache_ttl must be >= 0 (got %g)" t.cache_ttl);
  if t.index_budget < 0 then
    reject
      (Printf.sprintf "options: index_budget must be >= 0 (got %d)" t.index_budget);
  if t.batch_window < 0.0 then
    reject (Printf.sprintf "options: batch_window must be >= 0 (got %g)" t.batch_window);
  if t.batch_max_tuples < 1 then
    reject
      (Printf.sprintf "options: batch_max_tuples must be >= 1 (got %d)"
         t.batch_max_tuples);
  let max_bloom_bits = 1 lsl 24 in
  let is_power_of_two n = n > 0 && n land (n - 1) = 0 in
  if t.sent_bloom_bits <> 0
     && not (is_power_of_two t.sent_bloom_bits && t.sent_bloom_bits <= max_bloom_bits)
  then
    reject
      (Printf.sprintf
         "options: sent_bloom_bits must be 0 or a power of two <= %d (got %d)"
         max_bloom_bits t.sent_bloom_bits);
  if t.sent_ring_capacity < 1 then
    reject
      (Printf.sprintf "options: sent_ring_capacity must be >= 1 (got %d)"
         t.sent_ring_capacity);
  match List.rev !errors with [] -> Ok () | errors -> Error errors
