(** Bounded duplicate-suppression state for one incoming link.

    The seed kept an exact, unbounded {!Update_state.Tuple_set} per rule;
    this replaces it with a Bloom filter fronting a bounded exact FIFO ring.
    Correctness direction: {!already_sent} may only return [true] for a
    tuple that really was sent (the Bloom filter gates the exact ring
    check, never the send itself), so false positives and ring evictions
    can cause re-sends but never drops — the fix-point result is
    unchanged. With [bloom_bits = 0] the filter degrades to the seed's
    exact unbounded set. *)

type t

val create : bloom_bits:int -> ring_capacity:int -> t
(** [bloom_bits = 0] selects exact unbounded mode and ignores
    [ring_capacity]; otherwise [bloom_bits] must be a positive power of
    two and [ring_capacity >= 1]. *)

val already_sent : t -> Codb_relalg.Tuple.t -> bool
(** Definite membership: [true] only if the tuple is still tracked.
    A tuple evicted from the ring answers [false] (re-send, safe). *)

val note_sent : t -> Codb_relalg.Tuple.t -> unit

val elements : t -> Codb_relalg.Tuple.t list
(** The tuples still provably tracked, sorted — what a durability
    snapshot records.  For a [Bounded] filter this is only the live
    ring, so recovery may re-send evicted tuples (receivers dedup). *)

val tracked : t -> int
(** Exact entries currently held (set cardinality or live ring slots). *)

val possible_resends : t -> int
(** Times the Bloom filter answered "maybe" but the exact ring had
    already evicted the tuple — an upper bound on filter-induced
    re-sends, surfaced in the wire statistics. *)
