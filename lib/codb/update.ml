module Peer_id = Codb_net.Peer_id
module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom
module Tuple_set = Codb_relalg.Relation.Tuple_set
module Eval = Codb_cq.Eval
module U = Update_state

let src_log = Logs.Src.create "codb.update" ~doc:"coDB global update algorithm"

module Log = (val Logs.src_log src_log : Logs.LOG)

let head_rel (r : Config.rule_decl) = r.Config.rule_query.Query.head.Atom.rel

let importer_of (r : Config.rule_decl) = Peer_id.of_string r.Config.importer

let source_of (r : Config.rule_decl) = Peer_id.of_string r.Config.source

let rule_ids rules = List.map (fun r -> r.Config.rule_id) rules

let stat (rt : Runtime.t) uid = Stats.update_stat rt.node.Node.stats ~now:(rt.now ()) uid

(* Attribute the index probes / relation scans performed by [f] to the
   update's statistics. *)
let with_counters us f =
  Stats.with_eval_counters
    ~note:(fun ~probes ~scans ~zvisited ~zpruned ->
      us.Stats.us_probes <- us.Stats.us_probes + probes;
      us.Stats.us_scans <- us.Stats.us_scans + scans;
      us.Stats.us_zvisited <- us.Stats.us_zvisited + zvisited;
      us.Stats.us_zpruned <- us.Stats.us_zpruned + zpruned)
    f

(* Is [st] still the state the node knows for this update?  A crash
   clears the table; timers and transport callbacks armed before the
   crash must not mutate the orphaned record (or a namesake created
   after a restart). *)
let is_current (rt : Runtime.t) (st : U.t) =
  match Node.update_state rt.Runtime.node st.U.ust_update with
  | Some current -> current == st
  | None -> false

let finalize rt (st : U.t) =
  if not st.U.ust_finished then begin
    st.U.ust_finished <- true;
    let us = stat rt st.U.ust_update in
    us.Stats.us_finished <- Some (rt.Runtime.now ());
    us.Stats.us_resends <- U.possible_resends st;
    (* the update may have changed our store and every peer the flood
       reached; cached answers that rest on any of them are now
       suspect.  Conservative: bump ourselves and all acquaintances
       (sub-queries only ever contact acquaintances, so these are the
       only peers a cache stamp can mention). *)
    match rt.Runtime.node.Node.cache with
    | Some cache ->
        let staled =
          Codb_cache.Qcache.note_update cache
            (rt.Runtime.node.Node.node_id :: Node.acquaintances rt.Runtime.node)
        in
        us.Stats.us_cache_staled <- us.Stats.us_cache_staled + staled
    | None -> ()
  end

(* May this node export data?  Principle (d): an inconsistent node
   keeps routing but never contributes its own (tainted) data. *)
let may_export (rt : Runtime.t) =
  rt.node.Node.decl.Config.constraints = [] || Node.is_consistent rt.node

let close_everything (st : U.t) =
  Hashtbl.iter (fun rule _ -> U.close_out st rule) (Hashtbl.copy st.U.ust_out);
  Hashtbl.iter (fun rule _ -> U.close_in st rule) (Hashtbl.copy st.U.ust_in)

let flood_terminated rt (st : U.t) ~except =
  let forward peer =
    let skip = match except with Some p -> Peer_id.equal p peer | None -> false in
    if not skip then
      ignore
        (Reliable.send_noted rt ~dst:peer
           (Payload.Update_terminated { update_id = st.U.ust_update }))
  in
  List.iter forward (Node.acquaintances rt.Runtime.node)

let on_terminated rt (st : U.t) ~src =
  if not st.U.ust_terminated then begin
    st.U.ust_terminated <- true;
    close_everything st;
    finalize rt st;
    flood_terminated rt st ~except:(Some src)
  end

(* Dijkstra–Scholten: a node disengages (acknowledging the message
   that engaged it) once everything it sent has been acknowledged AND
   nothing is waiting in a wire buffer.  The pending check is what
   keeps batching termination-safe: buffered-but-unsent data keeps this
   node engaged, hence its parent's deficit positive, hence the
   initiator unable to declare quiescence while tuples are in flight
   anywhere — the accounting the seed did per message now holds per
   batch. *)
let check_disengage rt (st : U.t) =
  if st.U.ust_engaged && st.U.ust_deficit = 0 && U.pending_tuples st = 0 then
    if st.U.ust_initiator then begin
      st.U.ust_engaged <- false;
      st.U.ust_terminated <- true;
      close_everything st;
      finalize rt st;
      flood_terminated rt st ~except:None
    end
    else begin
      match st.U.ust_parent with
      | Some parent ->
          st.U.ust_engaged <- false;
          st.U.ust_parent <- None;
          ignore
            (Reliable.send_noted rt ~dst:parent
               (Payload.Update_ack { update_id = st.U.ust_update }))
      | None ->
          Log.warn (fun m ->
              m "%a: engaged without a parent in %a" Peer_id.pp rt.Runtime.node.Node.node_id
                Ids.pp_update st.U.ust_update)
    end

(* Send a message that takes part in termination accounting: the
   receiver owes us an acknowledgement.  Under the reliable transport
   the deficit must also be compensated when the transport gives up
   after its last retry: the receiver will never send the protocol
   acknowledgement either, and without the compensation the sender
   (hence the whole engagement tree) would wait forever. *)
let send_counted (rt : Runtime.t) (st : U.t) ~dst payload =
  let on_settled ~ok =
    if (not ok) && is_current rt st && not st.U.ust_terminated then begin
      st.U.ust_deficit <- max 0 (st.U.ust_deficit - 1);
      check_disengage rt st
    end
  in
  if Reliable.send_noted ~on_settled rt ~dst payload then
    st.U.ust_deficit <- st.U.ust_deficit + 1

let reliable_mode (rt : Runtime.t) =
  Options.reliable rt.Runtime.opts && Option.is_some rt.Runtime.node.Node.relay

let send_deferred_closes rt (st : U.t) ~dst =
  List.iter
    (fun (rule_id, global) ->
      send_counted rt st ~dst
        (Payload.Update_link_closed { update_id = st.U.ust_update; rule_id; global }))
    (U.take_deferred_closes st ~dst)

(* Data messages additionally maintain the per-destination in-flight
   count, so a link close held back by {!close_link} follows its data
   out as soon as the last message settles.  A settlement with
   [ok = false] still releases the closes: the receiver missed those
   tuples for good, and holding the close any longer would only stall
   termination on top of the data loss. *)
let send_data_counted rt (st : U.t) ~dst payload =
  if not (reliable_mode rt) then send_counted rt st ~dst payload
  else begin
    let on_settled ~ok =
      if is_current rt st then begin
        U.decr_unacked st ~dst;
        if not st.U.ust_terminated then begin
          if not ok then st.U.ust_deficit <- max 0 (st.U.ust_deficit - 1);
          if U.dst_unacked st ~dst = 0 then send_deferred_closes rt st ~dst;
          if not ok then check_disengage rt st
        end
      end
    in
    if Reliable.send_noted ~on_settled rt ~dst payload then begin
      st.U.ust_deficit <- st.U.ust_deficit + 1;
      U.incr_unacked st ~dst
    end
  end

(* Close a link towards [dst].  FIFO pipes used to guarantee that the
   close arrived after every data message sent before it; the reliable
   transport's retransmissions (and injected jitter) can reorder the
   two, making the importer integrate late data without forwarding it.
   So under the reliable transport the close waits until all data to
   [dst] has settled. *)
let close_link rt (st : U.t) ~dst ~rule_id =
  let global = not st.U.ust_scoped in
  if reliable_mode rt && U.dst_unacked st ~dst > 0 then
    U.defer_close st ~dst ~rule:rule_id ~global
  else
    send_counted rt st ~dst
      (Payload.Update_link_closed { update_id = st.U.ust_update; rule_id; global })

(* The initiator's last resort: bounded retries bound the transport,
   but a crashed-and-gone acquaintance (or an ack chain cut by a
   permanent partition) can still leave the engagement tree waiting.
   When nothing has moved for a whole failure-deadline window the
   initiator declares the update over — explicitly marked forced, so
   reports show the fix-point may be incomplete. *)
let force_terminate rt (st : U.t) =
  if not st.U.ust_terminated then begin
    Log.warn (fun m ->
        m "%a: forcing termination of stalled %a (deficit %d, pending %d)" Peer_id.pp
          rt.Runtime.node.Node.node_id Ids.pp_update st.U.ust_update st.U.ust_deficit
          (U.pending_tuples st));
    let us = stat rt st.U.ust_update in
    us.Stats.us_forced <- true;
    Stats.note_forced_termination rt.Runtime.node.Node.stats;
    st.U.ust_engaged <- false;
    st.U.ust_terminated <- true;
    close_everything st;
    finalize rt st;
    flood_terminated rt st ~except:None
  end

let rec arm_watchdog rt (st : U.t) ~last_activity =
  let window = Options.failure_deadline rt.Runtime.opts in
  rt.Runtime.schedule ~delay:window (fun () ->
      if is_current rt st && (not st.U.ust_terminated) && not st.U.ust_finished then
        if st.U.ust_activity = last_activity then force_terminate rt st
        else arm_watchdog rt st ~last_activity:st.U.ust_activity)

(* Drain [dst]'s wire buffer into a single counted message. *)
let flush_dst rt (st : U.t) us dst =
  match U.take_buffer st ~dst with
  | [] -> ()
  | entries ->
      let payload_entries =
        List.map
          (fun (rule, hops, tuples) ->
            { Payload.be_rule = rule; be_hops = hops; be_tuples = tuples })
          entries
      in
      let tuple_count =
        List.fold_left (fun acc e -> acc + List.length e.Payload.be_tuples) 0
          payload_entries
      in
      send_data_counted rt st ~dst
        (Payload.Update_batch
           { update_id = st.U.ust_update; entries = payload_entries;
             global = not st.U.ust_scoped });
      us.Stats.us_batches <- us.Stats.us_batches + 1;
      us.Stats.us_batch_tuples <- us.Stats.us_batch_tuples + tuple_count;
      Stats.note_sent_to us dst

(* Arm the flush window for [dst] unless one is already pending.  The
   scheduled action runs as its own simulator event, outside any message
   processing, so it must re-run the disengage check itself: if the
   flush's sends are all dropped (pipes closed meanwhile) the node may
   owe its parent an acknowledgement right now. *)
let schedule_flush rt (st : U.t) us dst =
  if not (U.flush_scheduled st ~dst) then begin
    U.set_flush_scheduled st ~dst true;
    rt.Runtime.schedule ~delay:rt.Runtime.opts.Options.batch_window (fun () ->
        if is_current rt st then begin
          U.set_flush_scheduled st ~dst false;
          flush_dst rt st us dst;
          check_disengage rt st
        end)
  end

let send_on_incoming rt (st : U.t) us (inc : Config.rule_decl) ~hops tuples =
  let opts = rt.Runtime.opts in
  let rule = inc.Config.rule_id in
  let fresh =
    if opts.Options.use_sent_cache then begin
      let fresh = List.filter (fun t -> not (U.already_sent st rule t)) tuples in
      U.add_sent st rule fresh;
      fresh
    end
    else tuples
  in
  if fresh <> [] then begin
    let dst = importer_of inc in
    if opts.Options.batch_window > 0.0 then begin
      let offered = List.length fresh in
      let added = U.buffer_add st ~dst ~rule ~hops fresh in
      us.Stats.us_coalesced <- us.Stats.us_coalesced + (offered - added);
      (* Flushing on the size bound sends immediately but never
         disengages: callers are mid-processing and the surrounding
         engage_and_process / scheduled event re-checks afterwards. *)
      if U.buffer_size st ~dst >= opts.Options.batch_max_tuples then
        flush_dst rt st us dst
      else schedule_flush rt st us dst
    end
    else begin
      send_data_counted rt st ~dst
        (Payload.Update_data
           { update_id = st.U.ust_update; rule_id = rule; tuples = fresh; hops;
             global = not st.U.ust_scoped });
      Stats.note_sent_to us dst
    end
  end

(* Close every still-open incoming link whose relevant outgoing links
   are all closed, notifying the importers (paper: "an acquaintance
   closes an incoming link if all its outgoing links which are
   relevant for this incoming link are closed").  Any data still
   buffered for the importer must flush first, and {!close_link} then
   keeps [Update_link_closed] from overtaking its own data and making
   the importer close the link early. *)
let maybe_close_incoming rt (st : U.t) =
  let close_if_ready (inc : Config.rule_decl) =
    if U.in_state st inc.Config.rule_id = U.Link_open then begin
      let relevant = Deps.relevant_outgoing rt.Runtime.node.Node.outgoing ~incoming:inc in
      let closed (o : Config.rule_decl) = U.out_state st o.Config.rule_id = U.Link_closed in
      if List.for_all closed relevant then begin
        U.close_in st inc.Config.rule_id;
        let dst = importer_of inc in
        flush_dst rt st (stat rt st.U.ust_update) dst;
        close_link rt st ~dst ~rule_id:inc.Config.rule_id
      end
    end
  in
  List.iter close_if_ready rt.Runtime.node.Node.incoming

let node_closed_check rt (st : U.t) = if U.all_out_closed st then finalize rt st

(* First contact with an update: flood the request, answer every
   incoming link from local data, close independent incoming links. *)
let first_contact rt (st : U.t) ~exclude =
  let uid = st.U.ust_update in
  let us = stat rt uid in
  let flood peer =
    let skip = match exclude with Some p -> Peer_id.equal p peer | None -> false in
    if not skip then
      send_counted rt st ~dst:peer
        (Payload.Update_request { update_id = uid; scope = Payload.Global })
  in
  List.iter flood (Node.acquaintances rt.Runtime.node);
  List.iter
    (fun (o : Config.rule_decl) -> Stats.note_queried us (source_of o))
    rt.Runtime.node.Node.outgoing;
  if may_export rt then
    List.iter
      (fun (inc : Config.rule_decl) ->
        let tuples =
          with_counters us (fun () ->
              Wrapper.eval_rule_full ~opts:rt.Runtime.opts
                rt.Runtime.node.Node.store inc)
        in
        send_on_incoming rt st us inc ~hops:1 tuples)
      rt.Runtime.node.Node.incoming;
  maybe_close_incoming rt st;
  node_closed_check rt st

(* Integrate one rule's worth of received tuples and recompute the
   dependent incoming links (the per-message statistics are the
   caller's job: one [Update_data] is one entry, one [Update_batch] is
   several). *)
let integrate_entry rt (st : U.t) us ~rule_id ~tuples ~hops =
  us.Stats.us_max_hops <- max us.Stats.us_max_hops hops;
  match Node.rule_out rt.Runtime.node rule_id with
  | None ->
      (* the rule was dropped by a runtime topology change *)
      Log.debug (fun m -> m "data for unknown outgoing rule %s ignored" rule_id)
  | Some o ->
      let rel = head_rel o in
      let integration =
        Wrapper.integrate ~opts:rt.Runtime.opts ~rule_id rt.Runtime.node.Node.store ~rel
          tuples
      in
      us.Stats.us_new_tuples <- us.Stats.us_new_tuples + List.length integration.Wrapper.fresh;
      us.Stats.us_dup_suppressed <-
        us.Stats.us_dup_suppressed + integration.Wrapper.suppressed;
      us.Stats.us_nulls_created <-
        us.Stats.us_nulls_created + integration.Wrapper.nulls_created;
      List.iter
        (fun tuple ->
          Lineage.record_import rt.Runtime.node.Node.lineage ~rel tuple
            { Lineage.li_rule = rule_id; li_hops = hops; li_at = rt.Runtime.now () })
        integration.Wrapper.fresh;
      (* the commit point: fresh tuples and their lineage hit the WAL
         before any derived sends leave this handler *)
      Durable.log_import rt.Runtime.node ~rule:rule_id ~rel ~hops
        ~at:(rt.Runtime.now ()) integration.Wrapper.fresh;
      (* the same delta the semi-naive recompute below consumes also
         feeds any standing queries hosted here, tagged with the
         lineage that produced it *)
      if integration.Wrapper.fresh <> [] then
        Sub_engine.on_store_delta rt ~rel ~delta:integration.Wrapper.fresh
          ~tag:(fun () ->
            Printf.sprintf "%s via %s hop %d"
              (Ids.string_of_update st.U.ust_update)
              rule_id hops);
      if integration.Wrapper.fresh <> [] && may_export rt then begin
        let recompute (inc : Config.rule_decl) =
          if U.in_state st inc.Config.rule_id = U.Link_open then begin
            let derived =
              with_counters us (fun () ->
                  Wrapper.eval_rule_delta ~opts:rt.Runtime.opts
                    ~naive:rt.Runtime.opts.Options.naive_delta
                    rt.Runtime.node.Node.store inc ~delta_rel:rel
                    ~delta:integration.Wrapper.fresh)
            in
            send_on_incoming rt st us inc ~hops:(hops + 1) derived
          end
        in
        List.iter recompute
          (Deps.dependent_incoming rt.Runtime.node.Node.incoming ~outgoing:o)
      end

let note_refetch rt bytes =
  if rt.Runtime.node.Node.track_refetch then
    Stats.note_refetched rt.Runtime.node.Node.stats bytes

let on_data rt (st : U.t) ~bytes ~rule_id ~tuples ~hops =
  let us = stat rt st.U.ust_update in
  us.Stats.us_data_msgs <- us.Stats.us_data_msgs + 1;
  us.Stats.us_bytes_in <- us.Stats.us_bytes_in + bytes;
  note_refetch rt bytes;
  let traffic = Stats.rule_traffic us rule_id in
  traffic.Stats.rt_msgs <- traffic.Stats.rt_msgs + 1;
  traffic.Stats.rt_bytes <- traffic.Stats.rt_bytes + bytes;
  traffic.Stats.rt_tuples <- traffic.Stats.rt_tuples + List.length tuples;
  integrate_entry rt st us ~rule_id ~tuples ~hops

let on_batch rt (st : U.t) ~bytes ~entries =
  let us = stat rt st.U.ust_update in
  us.Stats.us_data_msgs <- us.Stats.us_data_msgs + 1;
  us.Stats.us_bytes_in <- us.Stats.us_bytes_in + bytes;
  note_refetch rt bytes;
  let total_tuples =
    List.fold_left (fun acc e -> acc + List.length e.Payload.be_tuples) 0 entries
  in
  List.iter
    (fun e ->
      let n = List.length e.Payload.be_tuples in
      let traffic = Stats.rule_traffic us e.Payload.be_rule in
      traffic.Stats.rt_msgs <- traffic.Stats.rt_msgs + 1;
      (* attribute the shared envelope proportionally to tuple counts *)
      traffic.Stats.rt_bytes <-
        (traffic.Stats.rt_bytes + if total_tuples = 0 then 0 else bytes * n / total_tuples);
      traffic.Stats.rt_tuples <- traffic.Stats.rt_tuples + n)
    entries;
  List.iter
    (fun e ->
      integrate_entry rt st us ~rule_id:e.Payload.be_rule ~tuples:e.Payload.be_tuples
        ~hops:e.Payload.be_hops)
    entries

let on_link_closed rt (st : U.t) ~rule_id =
  U.close_out st rule_id;
  maybe_close_incoming rt st;
  node_closed_check rt st

let fresh_state rt ~initiator ~scoped uid =
  let opts = rt.Runtime.opts in
  let bloom_bits = opts.Options.sent_bloom_bits in
  let ring_capacity = opts.Options.sent_ring_capacity in
  let st =
    if scoped then
      U.create ~initiator ~scoped ~bloom_bits ~ring_capacity ~outgoing:[] ~incoming:[]
        uid
    else
      U.create ~initiator ~bloom_bits ~ring_capacity
        ~outgoing:(rule_ids rt.Runtime.node.Node.outgoing)
        ~incoming:(rule_ids rt.Runtime.node.Node.incoming)
        uid
  in
  Node.add_update_state rt.Runtime.node st;
  (* sent-filter carry-over from a WAL recovery: when a retransmitted
     message re-engages an update this node served before the crash,
     don't re-ship the tuples we can prove already left *)
  (match rt.Runtime.node.Node.recovered_sent with
  | [] -> ()
  | recovered ->
      let key = Ids.string_of_update uid in
      List.iter
        (fun (uid', rule, tuples) ->
          if String.equal uid' key then U.add_sent st rule tuples)
        recovered);
  st

(* Scoped updates: ask the source of an outgoing link for its data
   (once per link per update). *)
let activate_outgoing rt (st : U.t) (o : Config.rule_decl) =
  if not (U.is_active_out st o.Config.rule_id) then begin
    U.activate_out st o.Config.rule_id;
    Stats.note_queried (stat rt st.U.ust_update) (source_of o);
    send_counted rt st ~dst:(source_of o)
      (Payload.Update_request
         { update_id = st.U.ust_update; scope = Payload.For_rule o.Config.rule_id })
  end

(* Scoped updates: start serving one of our incoming links, and
   recursively request what its body needs. *)
let activate_incoming rt (st : U.t) ~requester rule_id =
  if not (U.is_active_in st rule_id) then begin
    match Node.rule_in rt.Runtime.node rule_id with
    | None ->
        (* version skew: we do not know the rule; release the
           requester so it does not wait on this link forever *)
        ignore
          (Reliable.send_noted rt ~dst:requester
             (Payload.Update_link_closed
                { update_id = st.U.ust_update; rule_id; global = false }))
    | Some inc ->
        U.activate_in st rule_id;
        let us = stat rt st.U.ust_update in
        if may_export rt then begin
          let tuples =
            with_counters us (fun () ->
                Wrapper.eval_rule_full ~opts:rt.Runtime.opts
                  rt.Runtime.node.Node.store inc)
          in
          send_on_incoming rt st us inc ~hops:1 tuples
        end;
        List.iter (activate_outgoing rt st)
          (Deps.relevant_outgoing rt.Runtime.node.Node.outgoing ~incoming:inc);
        maybe_close_incoming rt st;
        node_closed_check rt st
  end

let initiate rt uid =
  match Node.update_state rt.Runtime.node uid with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Update.initiate: %s already ran here" (Ids.string_of_update uid))
  | None ->
      let st = fresh_state rt ~initiator:true ~scoped:false uid in
      st.U.ust_engaged <- true;
      first_contact rt st ~exclude:None;
      check_disengage rt st;
      if Options.reliable rt.Runtime.opts then
        arm_watchdog rt st ~last_activity:st.U.ust_activity

let initiate_scoped rt uid ~rels =
  match Node.update_state rt.Runtime.node uid with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Update.initiate_scoped: %s already ran here"
           (Ids.string_of_update uid))
  | None ->
      let st = fresh_state rt ~initiator:true ~scoped:true uid in
      st.U.ust_engaged <- true;
      let _ = stat rt uid in
      List.iter (activate_outgoing rt st)
        (Deps.relevant_for_query rt.Runtime.node.Node.outgoing ~rels);
      node_closed_check rt st;
      check_disengage rt st;
      if Options.reliable rt.Runtime.opts then
        arm_watchdog rt st ~last_activity:st.U.ust_activity

let count_control rt uid =
  let us = stat rt uid in
  us.Stats.us_control_msgs <- us.Stats.us_control_msgs + 1

(* Process one protocol message with Dijkstra–Scholten engagement
   bookkeeping around the payload-specific action.  [scoped] only
   matters on first contact, to create the right state flavour; for a
   global update the first contact also floods the request and serves
   every incoming link. *)
let engage_and_process rt ~src ~scoped uid process =
  match Node.update_state rt.Runtime.node uid with
  | None ->
      let st = fresh_state rt ~initiator:false ~scoped uid in
      U.touch st;
      st.U.ust_parent <- Some src;
      st.U.ust_engaged <- true;
      if not scoped then first_contact rt st ~exclude:(Some src);
      process st;
      check_disengage rt st
  | Some st ->
      U.touch st;
      if st.U.ust_engaged then begin
        process st;
        ignore
          (Reliable.send_noted rt ~dst:src (Payload.Update_ack { update_id = uid }));
        check_disengage rt st
      end
      else begin
        (* disengaged node re-contacted (a cycle delivered more data):
           re-engage with the new sender as parent *)
        st.U.ust_parent <- Some src;
        st.U.ust_engaged <- true;
        process st;
        check_disengage rt st
      end

let handle rt ~src ~bytes payload =
  match payload with
  | Payload.Update_ack { update_id } -> (
      match Node.update_state rt.Runtime.node update_id with
      | Some st ->
          count_control rt update_id;
          U.touch st;
          (* clamped: a transport give-up may already have compensated
             this acknowledgement before it finally arrived *)
          st.U.ust_deficit <- max 0 (st.U.ust_deficit - 1);
          check_disengage rt st
      | None -> ())
  | Payload.Update_terminated { update_id } -> (
      match Node.update_state rt.Runtime.node update_id with
      | Some st ->
          count_control rt update_id;
          U.touch st;
          on_terminated rt st ~src
      | None ->
          (* never contacted (e.g. connected after the fact): record a
             state so a late flood is absorbed silently *)
          ())
  | Payload.Update_request { update_id; scope = Payload.Global } ->
      count_control rt update_id;
      engage_and_process rt ~src ~scoped:false update_id (fun _st -> ())
  | Payload.Update_request { update_id; scope = Payload.For_rule rule_id } ->
      count_control rt update_id;
      engage_and_process rt ~src ~scoped:true update_id (fun st ->
          activate_incoming rt st ~requester:src rule_id)
  | Payload.Update_data { update_id; rule_id; tuples; hops; global } ->
      engage_and_process rt ~src ~scoped:(not global) update_id (fun st ->
          on_data rt st ~bytes ~rule_id ~tuples ~hops)
  | Payload.Update_batch { update_id; entries; global } ->
      engage_and_process rt ~src ~scoped:(not global) update_id (fun st ->
          on_batch rt st ~bytes ~entries)
  | Payload.Update_link_closed { update_id; rule_id; global } ->
      count_control rt update_id;
      engage_and_process rt ~src ~scoped:(not global) update_id (fun st ->
          on_link_closed rt st ~rule_id)
  | Payload.Query_request _ | Payload.Query_data _ | Payload.Query_done _
  | Payload.Rules_file _ | Payload.Start_update | Payload.Stats_request
  | Payload.Stats_response _ | Payload.Discovery_probe _ | Payload.Discovery_reply _
  | Payload.Seq _ | Payload.Seq_ack _ | Payload.Sub_register _
  | Payload.Sub_registered _ | Payload.Sub_unregister _ | Payload.Answer_delta _
  | Payload.Answer_batch _ ->
      (* transport frames are unwrapped by {!Dbm} before dispatch *)
      ()
