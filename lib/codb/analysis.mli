(** Static analysis of coordination-rule sets.

    coDB nodes may accumulate redundant coordination rules (e.g. after
    repeated rules-file broadcasts): a rule whose query is contained in
    another rule's query between the same pair of nodes imports
    nothing the other does not already import, yet still costs a
    request, an evaluation and link bookkeeping per update.  The
    detection uses the classical CQ-containment test
    ({!Codb_cq.Containment}), which is sound (conservative in the
    presence of comparison predicates). *)

module Config = Codb_cq.Config

type redundancy = {
  redundant : Config.rule_decl;  (** the rule that can be dropped *)
  covered_by : Config.rule_decl;  (** the rule that subsumes it *)
}

val redundant_rules : Config.t -> redundancy list
(** Every rule that is contained in another rule with the same
    importer and source.  When two rules are equivalent, the one with
    the lexicographically larger id is reported as redundant (so
    exactly one of each equivalent pair survives). *)

val minimise : Config.t -> Config.t
(** Drop every redundant rule. *)

val pp_redundancy : redundancy Fmt.t

(** {1 The global rule-dependency graph}

    Rule [a] {e feeds} rule [b] when [a]'s head writes a relation that
    [b]'s body reads at the same node ([a.importer = b.source]).  The
    strongly connected components of this graph determine where the
    update algorithm genuinely needs its fix-point machinery: a
    component with more than one rule (or a self-loop) keeps
    exchanging data until saturation, while rules outside such
    components settle after a single pass and close via the paper's
    acyclic link-closing protocol. *)

val dependency_edges : Config.t -> (string * string) list
(** [(a, b)] pairs of rule ids such that [a] feeds [b]. *)

val cyclic_components : Config.t -> string list list
(** The non-trivial strongly connected components (size > 1, or a
    self-feeding rule), each sorted, ordered by their smallest
    element.  Empty means the network is acyclic and every link closes
    without termination detection. *)
