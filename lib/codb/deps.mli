(** Dependencies between a node's incoming and outgoing links.

    Paper, Section 3: "We say that an incoming link is dependent on an
    outgoing link, or that an outgoing link is relevant for some
    incoming link, if the head of the outgoing link references a
    relation which is referenced by a body subgoal of the incoming
    link."

    Both links live at the same node: the outgoing link's head writes
    into a local relation, and the incoming link's body reads local
    relations. *)

module Config = Codb_cq.Config

val depends_on : incoming:Config.rule_decl -> outgoing:Config.rule_decl -> bool

val relevant_outgoing :
  Config.rule_decl list -> incoming:Config.rule_decl -> Config.rule_decl list
(** Among the node's outgoing links, those relevant for the given
    incoming link. *)

val dependent_incoming :
  Config.rule_decl list -> outgoing:Config.rule_decl -> Config.rule_decl list
(** Among the node's incoming links, those dependent on the given
    outgoing link. *)

val relevant_for_query :
  Config.rule_decl list -> rels:string list -> Config.rule_decl list
(** Outgoing links whose head relation is one of the given local
    relations (used by the query engine to decide where to fetch
    from). *)
