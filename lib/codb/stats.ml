module Peer_id = Codb_net.Peer_id

type rule_traffic = {
  mutable rt_msgs : int;
  mutable rt_bytes : int;
  mutable rt_tuples : int;
}

type update_stat = {
  us_update : Ids.update_id;
  mutable us_started : float;
  mutable us_finished : float option;
  mutable us_data_msgs : int;
  mutable us_control_msgs : int;
  mutable us_bytes_in : int;
  mutable us_new_tuples : int;
  mutable us_dup_suppressed : int;
  mutable us_nulls_created : int;
  mutable us_max_hops : int;
  mutable us_probes : int;
  mutable us_scans : int;
  mutable us_zvisited : int;
  mutable us_zpruned : int;
  mutable us_batches : int;
  mutable us_batch_tuples : int;
  mutable us_coalesced : int;
  mutable us_resends : int;
  mutable us_cache_staled : int;
  mutable us_forced : bool;
  us_per_rule : (string, rule_traffic) Hashtbl.t;
  mutable us_queried : Peer_id.t list;
  mutable us_sent_to : Peer_id.t list;
}

type cache_outcome = Cache_unused | Cache_miss | Cache_hit_exact | Cache_hit_containment

type query_stat = {
  qs_query : Ids.query_id;
  mutable qs_started : float;
  mutable qs_finished : float option;
  mutable qs_data_msgs : int;
  mutable qs_bytes_in : int;
  mutable qs_answers : int;
  mutable qs_certain : int;
  mutable qs_cache : cache_outcome;
  mutable qs_probes : int;
  mutable qs_scans : int;
  mutable qs_zvisited : int;
  mutable qs_zpruned : int;
  mutable qs_complete : bool;
  mutable qs_pushed : int;
  mutable qs_filtered_at_source : int;
  mutable qs_pushdown_hits : int;
}

type sub_counters = {
  mutable sb_registered : int;
  mutable sb_rejected : int;
  mutable sb_unregistered : int;
  mutable sb_deltas_in : int;
  mutable sb_prefiltered : int;
  mutable sb_deltas_out : int;
  mutable sb_push_msgs : int;
  mutable sb_adds : int;
  mutable sb_retracts : int;
  mutable sb_bytes : int;
  mutable sb_coalesced : int;
  mutable sb_probes : int;
  mutable sb_scans : int;
  mutable sb_zvisited : int;
  mutable sb_zpruned : int;
  mutable sb_cache_staled : int;
  mutable sb_torn_down : int;
  mutable sb_rearmed : int;
}

type chaos = {
  mutable ch_retransmits : int;
  mutable ch_dup_suppressed : int;
  mutable ch_give_ups : int;
  mutable ch_query_timeouts : int;
  mutable ch_partial_answers : int;
  mutable ch_forced_terminations : int;
  mutable ch_send_drops : int;
  mutable ch_recovered_records : int;
  mutable ch_replayed_bytes : int;
  mutable ch_refetched_bytes : int;
}

type t = {
  st_owner : Peer_id.t;
  st_updates : (string, update_stat) Hashtbl.t;  (* keyed by update-id string *)
  st_queries : (string, query_stat) Hashtbl.t;
  mutable st_inconsistent : bool;
  st_chaos : chaos;
  st_sub : sub_counters;
}

let create owner =
  {
    st_owner = owner;
    st_updates = Hashtbl.create 8;
    st_queries = Hashtbl.create 8;
    st_inconsistent = false;
    st_chaos =
      {
        ch_retransmits = 0;
        ch_dup_suppressed = 0;
        ch_give_ups = 0;
        ch_query_timeouts = 0;
        ch_partial_answers = 0;
        ch_forced_terminations = 0;
        ch_send_drops = 0;
        ch_recovered_records = 0;
        ch_replayed_bytes = 0;
        ch_refetched_bytes = 0;
      };
    st_sub =
      {
        sb_registered = 0;
        sb_rejected = 0;
        sb_unregistered = 0;
        sb_deltas_in = 0;
        sb_prefiltered = 0;
        sb_deltas_out = 0;
        sb_push_msgs = 0;
        sb_adds = 0;
        sb_retracts = 0;
        sb_bytes = 0;
        sb_coalesced = 0;
        sb_probes = 0;
        sb_scans = 0;
        sb_zvisited = 0;
        sb_zpruned = 0;
        sb_cache_staled = 0;
        sb_torn_down = 0;
        sb_rearmed = 0;
      };
  }

let chaos st = st.st_chaos

let sub st = st.st_sub

(* The evaluator's access-path counters are global; every protocol
   layer that runs a join attributes the delta to its own statistic
   the same way (update fix-point, query engine, subscriptions). *)
let with_eval_counters ~note f =
  let before = Codb_cq.Eval.counters () in
  let result = f () in
  let after = Codb_cq.Eval.counters () in
  note
    ~probes:(after.Codb_cq.Eval.probes - before.Codb_cq.Eval.probes)
    ~scans:(after.Codb_cq.Eval.scans - before.Codb_cq.Eval.scans)
    ~zvisited:
      (after.Codb_cq.Eval.zone_visited - before.Codb_cq.Eval.zone_visited)
    ~zpruned:(after.Codb_cq.Eval.zone_pruned - before.Codb_cq.Eval.zone_pruned);
  result

let note_retransmit st = st.st_chaos.ch_retransmits <- st.st_chaos.ch_retransmits + 1

let note_dup_suppressed st =
  st.st_chaos.ch_dup_suppressed <- st.st_chaos.ch_dup_suppressed + 1

let note_give_up st = st.st_chaos.ch_give_ups <- st.st_chaos.ch_give_ups + 1

let note_query_timeout st =
  st.st_chaos.ch_query_timeouts <- st.st_chaos.ch_query_timeouts + 1

let note_partial_answer st =
  st.st_chaos.ch_partial_answers <- st.st_chaos.ch_partial_answers + 1

let note_forced_termination st =
  st.st_chaos.ch_forced_terminations <- st.st_chaos.ch_forced_terminations + 1

let note_send_drop st = st.st_chaos.ch_send_drops <- st.st_chaos.ch_send_drops + 1

let note_recovery st ~records ~replayed_bytes =
  st.st_chaos.ch_recovered_records <- st.st_chaos.ch_recovered_records + records;
  st.st_chaos.ch_replayed_bytes <- st.st_chaos.ch_replayed_bytes + replayed_bytes

let note_refetched st bytes =
  st.st_chaos.ch_refetched_bytes <- st.st_chaos.ch_refetched_bytes + bytes

let owner st = st.st_owner

let update_stat st ~now update_id =
  let key = Ids.string_of_update update_id in
  match Hashtbl.find_opt st.st_updates key with
  | Some s -> s
  | None ->
      let s =
        {
          us_update = update_id;
          us_started = now;
          us_finished = None;
          us_data_msgs = 0;
          us_control_msgs = 0;
          us_bytes_in = 0;
          us_new_tuples = 0;
          us_dup_suppressed = 0;
          us_nulls_created = 0;
          us_max_hops = 0;
          us_probes = 0;
          us_scans = 0;
          us_zvisited = 0;
          us_zpruned = 0;
          us_batches = 0;
          us_batch_tuples = 0;
          us_coalesced = 0;
          us_resends = 0;
          us_cache_staled = 0;
          us_forced = false;
          us_per_rule = Hashtbl.create 8;
          us_queried = [];
          us_sent_to = [];
        }
      in
      Hashtbl.add st.st_updates key s;
      s

let find_update st update_id =
  Hashtbl.find_opt st.st_updates (Ids.string_of_update update_id)

let query_stat st ~now query_id =
  let key = Ids.string_of_query query_id in
  match Hashtbl.find_opt st.st_queries key with
  | Some s -> s
  | None ->
      let s =
        {
          qs_query = query_id;
          qs_started = now;
          qs_finished = None;
          qs_data_msgs = 0;
          qs_bytes_in = 0;
          qs_answers = 0;
          qs_certain = 0;
          qs_cache = Cache_unused;
          qs_probes = 0;
          qs_scans = 0;
          qs_zvisited = 0;
          qs_zpruned = 0;
          qs_complete = true;
          qs_pushed = 0;
          qs_filtered_at_source = 0;
          qs_pushdown_hits = 0;
        }
      in
      Hashtbl.add st.st_queries key s;
      s

let find_query st query_id = Hashtbl.find_opt st.st_queries (Ids.string_of_query query_id)

let rule_traffic us rule_id =
  match Hashtbl.find_opt us.us_per_rule rule_id with
  | Some rt -> rt
  | None ->
      let rt = { rt_msgs = 0; rt_bytes = 0; rt_tuples = 0 } in
      Hashtbl.add us.us_per_rule rule_id rt;
      rt

let add_unique peer peers = if List.mem peer peers then peers else peer :: peers

let note_queried us peer = us.us_queried <- add_unique peer us.us_queried

let note_sent_to us peer = us.us_sent_to <- add_unique peer us.us_sent_to

let set_inconsistent st flag = st.st_inconsistent <- flag

let is_inconsistent st = st.st_inconsistent

type rule_traffic_snap = {
  rts_rule : string;
  rts_msgs : int;
  rts_bytes : int;
  rts_tuples : int;
}

type update_snap = {
  usn_update : Ids.update_id;
  usn_started : float;
  usn_finished : float option;
  usn_data_msgs : int;
  usn_control_msgs : int;
  usn_bytes_in : int;
  usn_new_tuples : int;
  usn_dup_suppressed : int;
  usn_nulls_created : int;
  usn_max_hops : int;
  usn_probes : int;
  usn_scans : int;
  usn_zvisited : int;
  usn_zpruned : int;
  usn_batches : int;
  usn_batch_tuples : int;
  usn_coalesced : int;
  usn_resends : int;
  usn_cache_staled : int;
  usn_forced : bool;
  usn_per_rule : rule_traffic_snap list;
  usn_queried : Peer_id.t list;
  usn_sent_to : Peer_id.t list;
}

type query_snap = {
  qsn_query : Ids.query_id;
  qsn_started : float;
  qsn_finished : float option;
  qsn_data_msgs : int;
  qsn_bytes_in : int;
  qsn_answers : int;
  qsn_certain : int;
  qsn_cache : cache_outcome;
  qsn_probes : int;
  qsn_scans : int;
  qsn_zvisited : int;
  qsn_zpruned : int;
  qsn_complete : bool;
  qsn_pushed : int;
  qsn_filtered_at_source : int;
  qsn_pushdown_hits : int;
}

type chaos_snap = {
  chn_retransmits : int;
  chn_dup_suppressed : int;
  chn_give_ups : int;
  chn_query_timeouts : int;
  chn_partial_answers : int;
  chn_forced_terminations : int;
  chn_send_drops : int;
  chn_recovered_records : int;
  chn_replayed_bytes : int;
  chn_refetched_bytes : int;
}

type sub_snap = {
  ssn_registered : int;
  ssn_rejected : int;
  ssn_unregistered : int;
  ssn_deltas_in : int;
  ssn_prefiltered : int;
  ssn_deltas_out : int;
  ssn_push_msgs : int;
  ssn_adds : int;
  ssn_retracts : int;
  ssn_bytes : int;
  ssn_coalesced : int;
  ssn_probes : int;
  ssn_scans : int;
  ssn_zvisited : int;
  ssn_zpruned : int;
  ssn_cache_staled : int;
  ssn_torn_down : int;
  ssn_rearmed : int;
}

type cache_snap = {
  csn_hits_exact : int;
  csn_hits_containment : int;
  csn_misses : int;
  csn_stores : int;
  csn_invalidations : int;
  csn_expirations : int;
  csn_evictions : int;
  csn_bytes_served : int;
  csn_entries : int;
  csn_stored_bytes : int;
}

type snapshot = {
  snap_node : Peer_id.t;
  snap_inconsistent : bool;
  snap_store_tuples : int;
  snap_updates : update_snap list;
  snap_queries : query_snap list;
  snap_cache : cache_snap option;
  snap_chaos : chaos_snap;
  snap_sub : sub_snap;
}

let snap_update us =
  let per_rule =
    Hashtbl.fold
      (fun rule rt acc ->
        { rts_rule = rule; rts_msgs = rt.rt_msgs; rts_bytes = rt.rt_bytes;
          rts_tuples = rt.rt_tuples }
        :: acc)
      us.us_per_rule []
  in
  {
    usn_update = us.us_update;
    usn_started = us.us_started;
    usn_finished = us.us_finished;
    usn_data_msgs = us.us_data_msgs;
    usn_control_msgs = us.us_control_msgs;
    usn_bytes_in = us.us_bytes_in;
    usn_new_tuples = us.us_new_tuples;
    usn_dup_suppressed = us.us_dup_suppressed;
    usn_nulls_created = us.us_nulls_created;
    usn_max_hops = us.us_max_hops;
    usn_probes = us.us_probes;
    usn_scans = us.us_scans;
    usn_zvisited = us.us_zvisited;
    usn_zpruned = us.us_zpruned;
    usn_batches = us.us_batches;
    usn_batch_tuples = us.us_batch_tuples;
    usn_coalesced = us.us_coalesced;
    usn_resends = us.us_resends;
    usn_cache_staled = us.us_cache_staled;
    usn_forced = us.us_forced;
    usn_per_rule = List.sort (fun a b -> String.compare a.rts_rule b.rts_rule) per_rule;
    usn_queried = us.us_queried;
    usn_sent_to = us.us_sent_to;
  }

let snap_query qs =
  {
    qsn_query = qs.qs_query;
    qsn_started = qs.qs_started;
    qsn_finished = qs.qs_finished;
    qsn_data_msgs = qs.qs_data_msgs;
    qsn_bytes_in = qs.qs_bytes_in;
    qsn_answers = qs.qs_answers;
    qsn_certain = qs.qs_certain;
    qsn_cache = qs.qs_cache;
    qsn_probes = qs.qs_probes;
    qsn_scans = qs.qs_scans;
    qsn_zvisited = qs.qs_zvisited;
    qsn_zpruned = qs.qs_zpruned;
    qsn_complete = qs.qs_complete;
    qsn_pushed = qs.qs_pushed;
    qsn_filtered_at_source = qs.qs_filtered_at_source;
    qsn_pushdown_hits = qs.qs_pushdown_hits;
  }

let snapshot ?(store_tuples = 0) ?cache st =
  let updates = Hashtbl.fold (fun _ us acc -> snap_update us :: acc) st.st_updates [] in
  let queries = Hashtbl.fold (fun _ qs acc -> snap_query qs :: acc) st.st_queries [] in
  let by_start_u a b = Float.compare a.usn_started b.usn_started in
  let by_start_q a b = Float.compare a.qsn_started b.qsn_started in
  {
    snap_node = st.st_owner;
    snap_inconsistent = st.st_inconsistent;
    snap_store_tuples = store_tuples;
    snap_updates = List.sort by_start_u updates;
    snap_queries = List.sort by_start_q queries;
    snap_cache = cache;
    snap_chaos =
      {
        chn_retransmits = st.st_chaos.ch_retransmits;
        chn_dup_suppressed = st.st_chaos.ch_dup_suppressed;
        chn_give_ups = st.st_chaos.ch_give_ups;
        chn_query_timeouts = st.st_chaos.ch_query_timeouts;
        chn_partial_answers = st.st_chaos.ch_partial_answers;
        chn_forced_terminations = st.st_chaos.ch_forced_terminations;
        chn_send_drops = st.st_chaos.ch_send_drops;
        chn_recovered_records = st.st_chaos.ch_recovered_records;
        chn_replayed_bytes = st.st_chaos.ch_replayed_bytes;
        chn_refetched_bytes = st.st_chaos.ch_refetched_bytes;
      };
    snap_sub =
      {
        ssn_registered = st.st_sub.sb_registered;
        ssn_rejected = st.st_sub.sb_rejected;
        ssn_unregistered = st.st_sub.sb_unregistered;
        ssn_deltas_in = st.st_sub.sb_deltas_in;
        ssn_prefiltered = st.st_sub.sb_prefiltered;
        ssn_deltas_out = st.st_sub.sb_deltas_out;
        ssn_push_msgs = st.st_sub.sb_push_msgs;
        ssn_adds = st.st_sub.sb_adds;
        ssn_retracts = st.st_sub.sb_retracts;
        ssn_bytes = st.st_sub.sb_bytes;
        ssn_coalesced = st.st_sub.sb_coalesced;
        ssn_probes = st.st_sub.sb_probes;
        ssn_scans = st.st_sub.sb_scans;
        ssn_zvisited = st.st_sub.sb_zvisited;
        ssn_zpruned = st.st_sub.sb_zpruned;
        ssn_cache_staled = st.st_sub.sb_cache_staled;
        ssn_torn_down = st.st_sub.sb_torn_down;
        ssn_rearmed = st.st_sub.sb_rearmed;
      };
  }

let sub_snap_is_zero s =
  s.ssn_registered = 0 && s.ssn_rejected = 0 && s.ssn_unregistered = 0
  && s.ssn_deltas_in = 0 && s.ssn_prefiltered = 0 && s.ssn_deltas_out = 0
  && s.ssn_push_msgs = 0 && s.ssn_adds = 0 && s.ssn_retracts = 0
  && s.ssn_bytes = 0 && s.ssn_coalesced = 0 && s.ssn_probes = 0
  && s.ssn_scans = 0 && s.ssn_zvisited = 0 && s.ssn_zpruned = 0
  && s.ssn_cache_staled = 0 && s.ssn_torn_down = 0 && s.ssn_rearmed = 0

let snapshot_size_bytes snap =
  (* rough: fixed cost per record plus per-rule entries *)
  64
  + List.fold_left
      (fun acc u -> acc + 96 + (24 * List.length u.usn_per_rule))
      0 snap.snap_updates
  + (48 * List.length snap.snap_queries)
  + (match snap.snap_cache with Some _ -> 48 | None -> 0)
  (* charged only when subscriptions actually ran, so turning the
     feature off leaves every stats message size untouched *)
  + (if sub_snap_is_zero snap.snap_sub then 0 else 64)

let pp_finished ppf = function
  | None -> Fmt.string ppf "unfinished"
  | Some f -> Fmt.pf ppf "%.4fs" f

let pp_peer_list ppf = function
  | [] -> Fmt.string ppf "none"
  | peers -> Fmt.(list ~sep:(any ", ") Peer_id.pp) ppf peers

(* Zone-map counters print only when they moved, so feature-off
   reports are byte-identical to the pre-zone-map format. *)
let zone_suffix ~visited ~pruned =
  if visited = 0 && pruned = 0 then ""
  else Fmt.str ", zone chunks %d visited (%d pruned)" visited pruned

let pp_update_snap ppf u =
  Fmt.pf ppf
    "@[<v 2>%a%s: started %.4fs, finished %a, data msgs %d, control msgs %d, bytes in \
     %d, new tuples %d, dups suppressed %d, nulls %d, longest path %d, index \
     probes %d, scans %d%s, batches %d (%d tuples), coalesced %d, resends %d, cache \
     staled %d@,\
     queried: %a@,\
     results sent to: %a%a@]"
    Ids.pp_update u.usn_update
    (if u.usn_forced then " (FORCED TERMINATION)" else "")
    u.usn_started pp_finished u.usn_finished u.usn_data_msgs
    u.usn_control_msgs u.usn_bytes_in u.usn_new_tuples u.usn_dup_suppressed
    u.usn_nulls_created u.usn_max_hops u.usn_probes u.usn_scans
    (zone_suffix ~visited:u.usn_zvisited ~pruned:u.usn_zpruned)
    u.usn_batches
    u.usn_batch_tuples u.usn_coalesced u.usn_resends u.usn_cache_staled pp_peer_list
    u.usn_queried pp_peer_list
    u.usn_sent_to
    Fmt.(
      list ~sep:nop (fun ppf rt ->
          Fmt.pf ppf "@,rule %s: %d msgs, %d B, %d tuples" rt.rts_rule rt.rts_msgs
            rt.rts_bytes rt.rts_tuples))
    u.usn_per_rule

let cache_outcome_string = function
  | Cache_unused -> "cache unused"
  | Cache_miss -> "cache miss"
  | Cache_hit_exact -> "cache hit (exact)"
  | Cache_hit_containment -> "cache hit (containment)"

let pp_query_snap ppf q =
  Fmt.pf ppf
    "%a: %d answers (%d certain)%s, %d data msgs, %d B in, %d probes, %d scans%s%s%s"
    Ids.pp_query q.qsn_query q.qsn_answers q.qsn_certain
    (if q.qsn_complete then "" else " INCOMPLETE")
    q.qsn_data_msgs q.qsn_bytes_in q.qsn_probes q.qsn_scans
    (zone_suffix ~visited:q.qsn_zvisited ~pruned:q.qsn_zpruned)
    (match q.qsn_cache with
    | Cache_unused -> ""
    | outcome -> ", " ^ cache_outcome_string outcome)
    (if q.qsn_pushed = 0 && q.qsn_filtered_at_source = 0 && q.qsn_pushdown_hits = 0
     then ""
     else
       Fmt.str
         ", pushdown: %d constrained sub-requests, %d filtered at source, %d \
          rule-cache hits"
         q.qsn_pushed q.qsn_filtered_at_source q.qsn_pushdown_hits)

let pp_cache_snap ppf c =
  Fmt.pf ppf
    "cache: %d exact + %d containment hits, %d misses, %d stores, %d invalidated, \
     %d expired, %d evicted, %d B served, %d entries (%d B)"
    c.csn_hits_exact c.csn_hits_containment c.csn_misses c.csn_stores
    c.csn_invalidations c.csn_expirations c.csn_evictions c.csn_bytes_served
    c.csn_entries c.csn_stored_bytes

let chaos_snap_is_zero c =
  c.chn_retransmits = 0 && c.chn_dup_suppressed = 0 && c.chn_give_ups = 0
  && c.chn_query_timeouts = 0 && c.chn_partial_answers = 0
  && c.chn_forced_terminations = 0 && c.chn_send_drops = 0
  && c.chn_recovered_records = 0 && c.chn_replayed_bytes = 0
  && c.chn_refetched_bytes = 0

let pp_chaos_snap ppf c =
  Fmt.pf ppf
    "transport: %d retransmits, %d dups suppressed, %d give-ups, %d sub-request \
     timeouts, %d partial answers, %d forced terminations, %d send drops, %d \
     recovered records, %d replayed bytes, %d refetched bytes"
    c.chn_retransmits c.chn_dup_suppressed c.chn_give_ups c.chn_query_timeouts
    c.chn_partial_answers c.chn_forced_terminations c.chn_send_drops
    c.chn_recovered_records c.chn_replayed_bytes c.chn_refetched_bytes

let pp_sub_snap ppf s =
  Fmt.pf ppf
    "subs: %d registered (%d refused, %d dropped), %d deltas in (%d prefiltered), \
     %d deltas out in %d msgs (+%d -%d, %d B, %d coalesced), %d probes, %d scans%s, \
     %d cache staled, %d torn down, %d re-armed"
    s.ssn_registered s.ssn_rejected s.ssn_unregistered s.ssn_deltas_in
    s.ssn_prefiltered s.ssn_deltas_out s.ssn_push_msgs s.ssn_adds s.ssn_retracts
    s.ssn_bytes s.ssn_coalesced s.ssn_probes s.ssn_scans
    (zone_suffix ~visited:s.ssn_zvisited ~pruned:s.ssn_zpruned)
    s.ssn_cache_staled
    s.ssn_torn_down s.ssn_rearmed

let pp_snapshot ppf s =
  Fmt.pf ppf "@[<v 2>node %a (%s, %d tuples)%a%a%a%a%a@]" Peer_id.pp s.snap_node
    (if s.snap_inconsistent then "INCONSISTENT" else "consistent")
    s.snap_store_tuples
    Fmt.(list ~sep:nop (fun ppf u -> Fmt.pf ppf "@,%a" pp_update_snap u))
    s.snap_updates
    Fmt.(list ~sep:nop (fun ppf q -> Fmt.pf ppf "@,%a" pp_query_snap q))
    s.snap_queries
    Fmt.(option (fun ppf c -> Fmt.pf ppf "@,%a" pp_cache_snap c))
    s.snap_cache
    (fun ppf c -> if not (chaos_snap_is_zero c) then Fmt.pf ppf "@,%a" pp_chaos_snap c)
    s.snap_chaos
    (fun ppf s -> if not (sub_snap_is_zero s) then Fmt.pf ppf "@,%a" pp_sub_snap s)
    s.snap_sub
