(** Runtime topology changes driven by the super-peer's rules file.

    Paper, Section 4: "If a coordination rules file is received when a
    peer has already set up coordination rules and pipes, then it
    drops 'old' rules and pipes, and creates new ones, where
    necessary.  Thus, a super-peer can dynamically change the network
    topology at runtime."  Section 3 adds that a pipe not assigned any
    coordination rule any more is closed. *)

val apply : Runtime.t -> version:int -> Codb_cq.Config.t -> bool
(** Install the coordination rules relevant to this node, reconnect
    pipes accordingly, and bump the node's rules version.  Returns
    [false] (no-op) when [version] is not newer than the node's
    current one. *)

val handle_text : Runtime.t -> version:int -> string -> (unit, string) result
(** Parse a broadcast rules file and {!apply} it. *)
