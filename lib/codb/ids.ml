module Peer_id = Codb_net.Peer_id

type update_id = { u_origin : Peer_id.t; u_serial : int }

type query_id = { q_origin : Peer_id.t; q_serial : int }

let update_id origin serial = { u_origin = origin; u_serial = serial }

let query_id origin serial = { q_origin = origin; q_serial = serial }

let equal_update a b = Peer_id.equal a.u_origin b.u_origin && a.u_serial = b.u_serial

let equal_query a b = Peer_id.equal a.q_origin b.q_origin && a.q_serial = b.q_serial

let pp_update ppf u = Fmt.pf ppf "upd:%a#%d" Peer_id.pp u.u_origin u.u_serial

let pp_query ppf q = Fmt.pf ppf "qry:%a#%d" Peer_id.pp q.q_origin q.q_serial

let string_of_update u = Fmt.str "%a" pp_update u

let string_of_query q = Fmt.str "%a" pp_query q
