module Message = Codb_net.Message
module Database = Codb_relalg.Database

let src_log = Logs.Src.create "codb.dbm" ~doc:"coDB database manager"

module Log = (val Logs.src_log src_log : Logs.LOG)

let rec dispatch (rt : Runtime.t) ~src ~bytes payload =
  match payload with
  | Payload.Seq { seq; inner } ->
      Reliable.on_seq rt ~src ~seq inner ~process:(fun inner ->
          dispatch rt ~src ~bytes inner)
  | Payload.Seq_ack { seq } -> Reliable.on_ack rt seq
  | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
  | Payload.Update_link_closed _ | Payload.Update_ack _ | Payload.Update_terminated _ ->
      Update.handle rt ~src ~bytes payload
  | Payload.Query_request _ | Payload.Query_data _ | Payload.Query_done _ ->
      Query_engine.handle rt ~src ~bytes payload
  | Payload.Discovery_probe _ | Payload.Discovery_reply _ ->
      Discovery.handle rt ~src payload
  | Payload.Rules_file { version; text } -> (
      match Reconfigure.handle_text rt ~version text with
      | Ok () -> ()
      | Error e -> Log.err (fun m -> m "rules file rejected: %s" e))
  | Payload.Start_update ->
      let node = rt.Runtime.node in
      let uid = Ids.update_id node.Node.node_id (Node.fresh_serial node) in
      Update.initiate rt uid
  | Payload.Stats_request ->
      let node = rt.Runtime.node in
      let stats =
        Stats.snapshot
          ~store_tuples:(Database.cardinal node.Node.store)
          ?cache:(Node.cache_snapshot node) node.Node.stats
      in
      ignore (Reliable.send_noted rt ~dst:src (Payload.Stats_response { stats }))
  | Payload.Stats_response _ ->
      (* only the super-peer aggregates statistics *)
      ()
  | Payload.Sub_register _ | Payload.Sub_registered _ | Payload.Sub_unregister _
  | Payload.Answer_delta _ | Payload.Answer_batch _ ->
      Sub_engine.handle rt ~src payload

let handle (rt : Runtime.t) (msg : Payload.t Message.t) =
  dispatch rt ~src:msg.Message.src ~bytes:msg.Message.size msg.Message.payload
