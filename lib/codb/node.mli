(** A coDB node: identity, Database Schema, Local Database (or the
    Wrapper's temporary store on mediator nodes), coordination rules,
    statistics, and per-computation protocol state.

    This corresponds to the paper's first-level architecture
    (Figure 1): the P2P layer state lives here, the network side is in
    {!Codb_net.Network}, and the database operations are in
    {!Wrapper}. *)

module Peer_id = Codb_net.Peer_id
module Config = Codb_cq.Config
module Database = Codb_relalg.Database

type t = {
  node_id : Peer_id.t;
  mutable decl : Config.node_decl;
  mutable store : Database.t;
      (** the LDB, or the Wrapper's temporary store when
          [decl.mediator] *)
  mutable outgoing : Config.rule_decl list;
      (** rules this node uses to import data (it is the importer) *)
  mutable incoming : Config.rule_decl list;
      (** rules other nodes use to import from this node (it is the
          source) *)
  stats : Stats.t;
  lineage : Lineage.t;  (** how each stored tuple got here *)
  updates : (string, Update_state.t) Hashtbl.t;
      (** keyed by update-id string *)
  query_instances : (string, Query_state.t) Hashtbl.t;
      (** keyed by this node's own instance reference *)
  sub_refs : (string, string) Hashtbl.t;
      (** sub-request reference -> owning instance reference *)
  mutable serial : int;
  mutable rules_version : int;
  mutable known_peers : Peer_id.Set.t;  (** filled by discovery *)
  seen_probes : (string, unit) Hashtbl.t;
      (** discovery probes already forwarded *)
  mutable cache : Codb_cache.Qcache.t option;
      (** the semantic query-answer cache; [None] unless
          {!Options.use_query_cache} *)
  mutable relay : Relay.t option;
      (** reliable-transport state; [None] unless {!Options.reliable}
          (set by {!System.install_node}; stub runtimes in tests leave
          it unset and sends stay fire-and-forget) *)
  mutable subs : Codb_sub.Registry.t option;
      (** standing queries this node hosts; [None] unless
          {!Options.subscriptions} *)
  sub_mirrors : (string, Codb_sub.Mirror.t) Hashtbl.t;
      (** this node's own remote subscriptions, keyed by subscription
          id: the answer sets reconstructed from pushed deltas *)
  sub_outbox : Codb_sub.Outbox.t;
      (** per-subscriber buffers of answer deltas awaiting a
          [sub_batch_window] flush *)
  mutable wal : Codb_store.Wal.t option;
      (** this node's write-ahead log; [None] unless
          [Options.durability = Dur_wal] (installed by
          {!System.install_node}, replaced on recovery) *)
  mutable wal_dict : Codb_net.Codec.Dict.sender option;
      (** the WAL stream's incremental string dictionary
          ([Options.link_dicts]): persists across log records, reset at
          every compaction so the log tail is always self-contained *)
  mutable wal_reserved : int;
      (** transport sequence numbers covered by the last logged
          [Seq_reserve] record; sequences below it need no new log
          record on allocation *)
  mutable recovered_sent : (string * string * Codb_relalg.Tuple.t list) list;
      (** (update-id, rule-id, tuples) sent-filter contents recovered
          from a snapshot, consumed lazily when the corresponding
          update state is re-created ({!Update.fresh_state}) *)
  mutable track_refetch : bool;
      (** set after a durability-mode restart: incoming update-data
          bytes count into [Stats.chaos.ch_refetched_bytes] until the
          run ends *)
}

val create : Config.node_decl -> t
(** Build the node and load its declared facts into the store. *)

val reset_store : t -> unit
(** An honest crash ([Options.durability <> Dur_off]): replace the
    store with a fresh one holding only the declared facts, and clear
    the lineage.  Recovery (or re-fetching) must rebuild the rest. *)

val fresh_serial : t -> int

val fresh_ref : t -> string
(** A request reference unique across the network
    ([<node>/<serial>]). *)

val configure_cache : t -> Options.t -> unit
(** Install (or remove) the query-answer cache according to the
    options; called once per node by {!System.build}. *)

val configure_subs : t -> Options.t -> unit
(** Install (or remove) the subscription registry according to
    [Options.subscriptions]; called by {!System.install_node} and
    again on restart. *)

val mirrors_sorted : t -> (string * Codb_sub.Mirror.t) list
(** This node's remote-subscription mirrors in subscription-id order
    (deterministic re-arm and display). *)

val cache_snapshot : t -> Stats.cache_snap option
(** Freeze the cache counters for a statistics snapshot. *)

val note_local_write : t -> unit
(** Bump this node's own epoch after a direct store mutation that
    bypassed the update protocol (fact insertion, store import), so
    cached answers that depended on the old contents are dropped. *)

val set_rules :
  t -> outgoing:Config.rule_decl list -> incoming:Config.rule_decl list -> unit
(** Replace the coordination rules.  Clears the query-answer cache:
    cached answers may rest on rules that no longer exist. *)

val rule_out : t -> string -> Config.rule_decl option
(** Find one of this node's outgoing rules by id. *)

val rule_in : t -> string -> Config.rule_decl option

val acquaintances : t -> Peer_id.t list
(** Peers this node shares a coordination rule with, sorted. *)

val update_state : t -> Ids.update_id -> Update_state.t option

val add_update_state : t -> Update_state.t -> unit

val explain : t -> rel:string -> Codb_relalg.Tuple.t -> Lineage.origin option
(** Why does (or doesn't) the node hold this tuple?  [None]: absent;
    [Some Base]: the node's own fact; [Some (Imported _)]: the rules
    and paths that delivered it. *)

val reset_volatile : t -> unit
(** A crash: drop in-flight update/query instances, sub-request
    bookkeeping, probe dedup, cached answers, hosted subscriptions,
    remote-subscription mirrors and buffered answer deltas (counted in
    [Stats.sub.sb_torn_down]).  The store, rules, statistics, lineage
    and the transport's sequence counter and dedup table survive (a
    restarted node must not reuse sequence numbers its peers may have
    recorded). *)

val has_live_callbacks : t -> bool
(** Any user-supplied callback armed on this node (a streaming root
    query, a local subscription with an [on_delta], a mirror with
    one)?  Such callbacks observe cross-node arrival order directly,
    so the parallel runtime keeps the node's handlers on the
    simulation domain. *)

val is_consistent : t -> bool
(** Evaluate the node's denial constraints against the store; record
    the verdict in the statistics module.  Per the paper's principle
    (d), callers must not propagate data from an inconsistent node. *)
