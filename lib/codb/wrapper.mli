(** The Wrapper: the only component that touches a node's store.

    In the paper's architecture the Wrapper "manages connections to
    LDB and executes input database manipulation operations"; on
    mediator nodes (no LDB) it runs joins and projections itself on
    temporary relations.  In this reproduction both cases are served
    by the in-memory engine, so the Wrapper is a thin, explicit
    boundary: rule evaluation, delta evaluation, and the
    duplicate-suppressed integration step of the update algorithm. *)

module Tuple = Codb_relalg.Tuple
module Database = Codb_relalg.Database
module Config = Codb_cq.Config
module Query = Codb_cq.Query

type integration = {
  fresh : Tuple.t list;  (** tuples actually added (nulls instantiated) *)
  suppressed : int;  (** incoming tuples dropped as duplicates *)
  nulls_created : int;
}

val eval_query_full : ?opts:Options.t -> Database.t -> Query.t -> Tuple.t list
(** Evaluate a GLAV-style query (existential head allowed) and return
    its head tuples, existential positions rendered as holes.  Used
    directly by the query engine when constraint pushdown has
    specialized a rule's query ({!Codb_cq.Specialize}). *)

val eval_query_delta :
  ?opts:Options.t ->
  naive:bool ->
  Database.t ->
  Query.t ->
  delta_rel:string ->
  delta:Tuple.t list ->
  Tuple.t list
(** Semi-naive counterpart of {!eval_query_full}. *)

val eval_rule_full :
  ?opts:Options.t -> Database.t -> Config.rule_decl -> Tuple.t list
(** Evaluate a coordination rule's body over the database and return
    the head tuples, existential positions rendered as holes.  [opts]
    (default {!Options.default}) selects planner vs legacy evaluation
    and the per-relation index budget. *)

val eval_rule_delta :
  ?opts:Options.t ->
  naive:bool ->
  Database.t ->
  Config.rule_decl ->
  delta_rel:string ->
  delta:Tuple.t list ->
  Tuple.t list
(** Head tuples derivable using at least one tuple of [delta]
    (semi-naive); the database must already contain the delta. *)

val integrate :
  opts:Options.t -> rule_id:string -> Database.t -> rel:string -> Tuple.t list ->
  integration
(** The update algorithm's local step: suppress tuples already present
    (null-aware when [opts.use_subsumption_dedup]), instantiate holes
    with fresh marked nulls, insert the remainder. *)

val user_answers : ?opts:Options.t -> Database.t -> Query.t -> Tuple.t list
(** Evaluate a user query (no existential head).  @raise
    Invalid_argument otherwise. *)
