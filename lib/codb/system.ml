module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network
module Link_dict = Codb_net.Link_dict
module Config = Codb_cq.Config
module Tuple = Codb_relalg.Tuple
module Database = Codb_relalg.Database
module Eval = Codb_cq.Eval

(* Outbound effects of one handler run under the parallel step: the
   handler's runtime closures append here instead of touching the
   shared network, and the simulation domain replays the buffer at the
   join barrier — in delivery order, through the very same closures —
   so message sequence numbers, event seqs, fault-RNG draws, traces
   and drop accounting all happen in exactly the sequential order. *)
type effect_ =
  | Ef_send of { ef_dst : Peer_id.t; ef_payload : Payload.t }
  | Ef_schedule of { ef_delay : float; ef_action : unit -> unit }
  | Ef_connect of Peer_id.t
  | Ef_disconnect of Peer_id.t

type capture = { mutable effects : effect_ list (* reversed *) }

(* Per-node durability bookkeeping: the backend outlives the node's
   crashes (it *is* the disk), and the accumulators keep counters from
   crashed WAL incarnations, which drop their live counter record when
   the node loses its [wal] at crash time. *)
type dur_node = {
  dn_backend : Codb_store.Backend.t;
  mutable dn_records : int;
  mutable dn_bytes : int;
  mutable dn_snapshots : int;
  mutable dn_snapshot_bytes : int;
  mutable dn_recoveries : int;
  mutable dn_recovered_records : int;
  mutable dn_replayed_bytes : int;
  mutable dn_recovery_ms : float;
}

type t = {
  sys_net : Payload.t Network.t;
  sys_links : Link_dict.t;
      (* per-directed-link incremental string dictionaries, trained by
         the byte-accounting path when [Options.link_dicts] is on *)
  sys_nodes : (string, Node.t) Hashtbl.t;
  sys_runtimes : (string, Runtime.t) Hashtbl.t;
  sys_captures : (string, capture option ref) Hashtbl.t;
  sys_dur : (string, dur_node) Hashtbl.t;
  sys_restarts : int ref;
  mutable sys_config : Config.t;
  sys_opts : Options.t;
  mutable sys_superpeer : Superpeer.t option;
  mutable sys_trace : Trace.t option;
}

let opts sys = sys.sys_opts

let net sys = sys.sys_net

let link_dict_stats sys = Link_dict.stats sys.sys_links

let config sys = sys.sys_config

let node sys name =
  match Hashtbl.find_opt sys.sys_nodes name with
  | Some n -> n
  | None -> raise Not_found

let runtime sys name =
  match Hashtbl.find_opt sys.sys_runtimes name with
  | Some rt -> rt
  | None -> raise Not_found

let node_names sys =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) sys.sys_nodes [])

let trace_event sys ~direction ~src ~dst what =
  match sys.sys_trace with
  | None -> ()
  | Some trace ->
      Trace.record trace
        {
          Trace.ev_at = Network.now sys.sys_net;
          ev_direction = direction;
          ev_src = src;
          ev_dst = dst;
          ev_what = what;
        }

(* Every runtime closure checks the node's capture cell first: [None]
   (the sequential loop, and batch replay) acts on the network
   directly; [Some buf] (a handler running inside a fanned-out batch)
   records the effect.  A captured [send] answers with the pipe-open
   prediction ({!Network.sendable}) — exact, because pipe state only
   changes through sequential control events, so it is frozen for the
   span of a batch. *)
let make_runtime sys (node : Node.t) =
  let id = node.Node.node_id in
  let capture : capture option ref = ref None in
  Hashtbl.replace sys.sys_captures (Peer_id.to_string id) capture;
  let connect peer =
    match !capture with
    | Some buf -> buf.effects <- Ef_connect peer :: buf.effects
    | None ->
        if Network.has_peer sys.sys_net peer then
          Network.connect sys.sys_net ~latency:sys.sys_opts.Options.latency
            ~byte_cost:sys.sys_opts.Options.byte_cost id peer
  in
  let send ~dst payload =
    match !capture with
    | Some buf ->
        (* record even when unsendable: the replay's real [send] does
           the dropped-message accounting sequentially *)
        buf.effects <- Ef_send { ef_dst = dst; ef_payload = payload } :: buf.effects;
        Network.sendable sys.sys_net ~src:id ~dst
    | None ->
        let delivered = Network.send sys.sys_net ~src:id ~dst payload in
        if delivered then
          trace_event sys ~direction:Trace.Sent ~src:id ~dst (Payload.describe payload);
        delivered
  in
  let schedule ~delay action =
    match !capture with
    | Some buf -> buf.effects <- Ef_schedule { ef_delay = delay; ef_action = action } :: buf.effects
    | None -> Network.schedule sys.sys_net ~delay action
  in
  let disconnect peer =
    match !capture with
    | Some buf -> buf.effects <- Ef_disconnect peer :: buf.effects
    | None -> Network.disconnect sys.sys_net id peer
  in
  {
    Runtime.node;
    opts = sys.sys_opts;
    send;
    now = (fun () -> Network.now sys.sys_net);
    schedule;
    connect;
    disconnect;
    neighbours = (fun () -> Network.neighbours sys.sys_net id);
  }

let handler sys rt msg =
  trace_event sys ~direction:Trace.Delivered ~src:msg.Codb_net.Message.src
    ~dst:msg.Codb_net.Message.dst
    (Payload.describe msg.Codb_net.Message.payload);
  Dbm.handle rt msg

let install_node sys decl =
  let name = decl.Config.node_name in
  if Hashtbl.mem sys.sys_nodes name then
    invalid_arg (Printf.sprintf "System: duplicate node %s" name);
  let node = Node.create decl in
  Node.configure_cache node sys.sys_opts;
  Node.configure_subs node sys.sys_opts;
  if Options.reliable sys.sys_opts then node.Node.relay <- Some (Relay.create ());
  Node.set_rules node
    ~outgoing:(Config.rules_importing_at sys.sys_config name)
    ~incoming:(Config.rules_sourced_at sys.sys_config name);
  Network.add_peer sys.sys_net node.Node.node_id;
  (match sys.sys_opts.Options.durability with
  | Options.Dur_wal ->
      let backend =
        match sys.sys_opts.Options.wal_dir with
        | Some dir ->
            Codb_store.Backend.file ~fsync:sys.sys_opts.Options.fsync ~dir
              ~node:name ()
        | None -> Codb_store.Backend.memory ()
      in
      Hashtbl.replace sys.sys_dur name
        {
          dn_backend = backend;
          dn_records = 0;
          dn_bytes = 0;
          dn_snapshots = 0;
          dn_snapshot_bytes = 0;
          dn_recoveries = 0;
          dn_recovered_records = 0;
          dn_replayed_bytes = 0;
          dn_recovery_ms = 0.;
        };
      ignore (Durable.install node sys.sys_opts ~backend : Codb_store.Wal.t)
  | Options.Dur_off | Options.Dur_volatile -> ());
  let rt = make_runtime sys node in
  Network.set_handler sys.sys_net node.Node.node_id (handler sys rt);
  Hashtbl.replace sys.sys_nodes name node;
  Hashtbl.replace sys.sys_runtimes name rt;
  node

let connect_acquaintances sys =
  let connect_rule (r : Config.rule_decl) =
    let a = Peer_id.of_string r.Config.importer
    and b = Peer_id.of_string r.Config.source in
    if Network.has_peer sys.sys_net a && Network.has_peer sys.sys_net b then
      Network.connect sys.sys_net ~latency:sys.sys_opts.Options.latency
        ~byte_cost:sys.sys_opts.Options.byte_cost a b
  in
  List.iter connect_rule sys.sys_config.Config.rules

(* A crash: the handler disappears (in-flight messages to the node
   drop at delivery time) and every pipe closes.  The volatile protocol
   state is cleared immediately.  Under [Dur_off] the store, lineage
   and transport state survive in memory (the lenient legacy model);
   under [Dur_volatile] and [Dur_wal] the crash is honest — RAM is
   gone, only the node's declaration (and, for [Dur_wal], its backend
   bytes) survive to the restart. *)
let crash_node sys name =
  let n = node sys name in
  let id = n.Node.node_id in
  (match Network.fault sys.sys_net with
  | Some fault -> Codb_net.Fault.note_crash fault
  | None -> ());
  Network.clear_handler sys.sys_net id;
  List.iter (fun peer -> Network.disconnect sys.sys_net id peer)
    (Network.neighbours sys.sys_net id);
  (match sys.sys_opts.Options.durability with
  | Options.Dur_off -> ()
  | Options.Dur_volatile | Options.Dur_wal ->
      (match (n.Node.wal, Hashtbl.find_opt sys.sys_dur name) with
      | Some wal, Some dn ->
          (* the live WAL dies with the node; keep its counters *)
          let c = Codb_store.Wal.counters wal in
          dn.dn_records <- dn.dn_records + c.Codb_store.Wal.records_written;
          dn.dn_bytes <- dn.dn_bytes + c.Codb_store.Wal.bytes_written;
          dn.dn_snapshots <- dn.dn_snapshots + c.Codb_store.Wal.snapshots_taken;
          dn.dn_snapshot_bytes <-
            dn.dn_snapshot_bytes + c.Codb_store.Wal.snapshot_bytes
      | _ -> ());
      n.Node.wal <- None;
      n.Node.relay <- None;
      n.Node.recovered_sent <- [];
      Node.reset_store n);
  Node.reset_volatile n;
  trace_event sys ~direction:Trace.Delivered ~src:id ~dst:id "crash"

(* A restart: volatile state is (re-)cleared, the cache epoch bumps so
   stale entries elsewhere cannot survive on this node's authority, the
   handler re-registers and the acquaintance pipes (plus the super-peer
   pipe, if one is tracked) reopen.

   What comes back depends on [Options.durability].  [Dur_off]: the
   lenient legacy model — store, lineage and transport state survived
   the crash in memory.  [Dur_volatile]: clear-and-refetch — the store
   restarts from the node's declaration, the transport restarts in a
   fresh sequence epoch (so recycled sequence numbers are impossible),
   and a catch-up global update re-imports everything the rules cover.
   [Dur_wal]: true recovery — snapshot plus log tail rebuild the
   store, lineage, transport reservation and dedup keys, sent-filters
   and subscription state; no catch-up update is issued, the reliable
   transport's retransmissions deliver the in-flight tail. *)
let restart_node sys name =
  let n = node sys name in
  let id = n.Node.node_id in
  (match Network.fault sys.sys_net with
  | Some fault -> Codb_net.Fault.note_restart fault
  | None -> ());
  Node.reset_volatile n;
  Node.configure_cache n sys.sys_opts;
  Node.configure_subs n sys.sys_opts;
  (match sys.sys_opts.Options.durability with
  | Options.Dur_off -> ()
  | Options.Dur_volatile ->
      Node.reset_store n;
      incr sys.sys_restarts;
      if Options.reliable sys.sys_opts then
        n.Node.relay <-
          Some (Relay.create ~next_seq:(!(sys.sys_restarts) * 1_000_000) ());
      n.Node.track_refetch <- true
  | Options.Dur_wal ->
      Node.reset_store n;
      (match Hashtbl.find_opt sys.sys_dur name with
      | None -> ()
      | Some dn ->
          let t0 = Sys.time () in
          let rv = Durable.recover n sys.sys_opts ~backend:dn.dn_backend in
          dn.dn_recovery_ms <-
            dn.dn_recovery_ms +. ((Sys.time () -. t0) *. 1000.);
          dn.dn_recoveries <- dn.dn_recoveries + 1;
          dn.dn_recovered_records <-
            dn.dn_recovered_records + rv.Durable.rv_records;
          dn.dn_replayed_bytes <-
            dn.dn_replayed_bytes + rv.Durable.rv_replayed_bytes);
      n.Node.track_refetch <- true);
  Node.note_local_write n;
  let rt = runtime sys name in
  Network.set_handler sys.sys_net id (handler sys rt);
  List.iter (fun peer -> rt.Runtime.connect peer) (Node.acquaintances n);
  (match sys.sys_superpeer with
  | Some sp ->
      Network.connect sys.sys_net ~latency:sys.sys_opts.Options.latency
        ~byte_cost:sys.sys_opts.Options.byte_cost id (Superpeer.id sp)
  | None -> ());
  (* the restarted node's registry lost (or, under [Dur_wal],
     recovered) its entries: every peer holding a mirror against it
     re-registers (deterministically, in node-name then sub-id order)
     and will receive a snapshot delta in reply — idempotent when the
     registration survived *)
  List.iter
    (fun name' ->
      if not (String.equal name' name) then
        Sub_engine.rearm_towards (runtime sys name') ~host:id)
    (node_names sys);
  (match sys.sys_opts.Options.durability with
  | Options.Dur_off -> ()
  | Options.Dur_volatile ->
      (* catch-up: a fresh global update re-imports, through the
         normal rule machinery, everything the crash wiped *)
      Update.initiate rt (Ids.update_id id (Node.fresh_serial n))
  | Options.Dur_wal ->
      (* recovered mirrors re-register with their hosts (the host
         answers with a full snapshot delta, absorbed idempotently);
         recovered hosted subscriptions re-diff against the recovered
         store and push what the registry's answer sets are missing *)
      List.iter
        (fun name' ->
          if not (String.equal name' name) then
            Sub_engine.rearm_towards rt ~host:(node sys name').Node.node_id)
        (node_names sys);
      Sub_engine.refresh_all rt ~tag:"recover");
  trace_event sys ~direction:Trace.Delivered ~src:id ~dst:id "restart"

(* Wire the options' fault knobs into the simulator: the drop/dup/
   jitter plan plus scheduled link flaps, and the crash/restart
   schedule on top (unknown node names are skipped when they fire, so
   plans survive topology changes). *)
let install_faults sys =
  let opts = sys.sys_opts in
  if Options.faults_enabled opts then begin
    let flaps =
      List.map
        (fun (a, b, down, up) ->
          {
            Codb_net.Fault.fl_a = Peer_id.of_string a;
            fl_b = Peer_id.of_string b;
            fl_down_at = down;
            fl_up_at = up;
          })
        opts.Options.flap_plan
    in
    let plan =
      {
        Codb_net.Fault.seed = opts.Options.fault_seed;
        drop_prob = opts.Options.drop_prob;
        dup_prob = opts.Options.dup_prob;
        jitter = opts.Options.jitter;
        drop_budget = opts.Options.drop_budget;
        flaps;
      }
    in
    ignore (Network.install_fault sys.sys_net plan);
    List.iter
      (fun (name, at, restart) ->
        Network.schedule sys.sys_net ~delay:at (fun () ->
            if Hashtbl.mem sys.sys_nodes name then crash_node sys name);
        match restart with
        | Some at' ->
            Network.schedule sys.sys_net ~delay:at' (fun () ->
                if Hashtbl.mem sys.sys_nodes name then restart_node sys name)
        | None -> ())
      opts.Options.crash_plan
  end

let build ?(opts = Options.default) cfg =
  match Options.validate opts with
  | Error errors -> Error errors
  | Ok () -> (
  match Config.validate cfg with
  | Error errors -> Error errors
  | Ok () ->
      if Config.node cfg Superpeer.peer_name <> None then
        Error [ Printf.sprintf "node name %s is reserved" Superpeer.peer_name ]
      else begin
        let links = Link_dict.create () in
        let size_of =
          if not opts.Options.wire_codec then fun ~src:_ ~dst:_ p -> Payload.size p
          else if not opts.Options.link_dicts then fun ~src:_ ~dst:_ p ->
            Payload.encoded_size p
          else fun ~src ~dst p ->
            (* Stats_response never encodes; keep it on the estimator
               rather than training the link dictionary with nothing. *)
            match p with
            | Payload.Stats_response _ -> Payload.encoded_size p
            | p -> Payload.encoded_size ~link:(Link_dict.sender links ~src ~dst) p
        in
        let net =
          Network.create ~default_latency:opts.Options.latency
            ~default_byte_cost:opts.Options.byte_cost ~size_of ()
        in
        if opts.Options.link_dicts then
          (* any pipe transition (close, reopen, flap) or send against a
             closed pipe desyncs the link: new epoch both ways *)
          Network.set_link_watcher net (fun a b -> Link_dict.bump_link links a b);
        let sys =
          {
            sys_net = net;
            sys_links = links;
            sys_nodes = Hashtbl.create 32;
            sys_runtimes = Hashtbl.create 32;
            sys_captures = Hashtbl.create 32;
            sys_dur = Hashtbl.create 32;
            sys_restarts = ref 0;
            sys_config = cfg;
            sys_opts = opts;
            sys_superpeer = None;
            sys_trace = None;
          }
        in
        List.iter (fun decl -> ignore (install_node sys decl)) cfg.Config.nodes;
        connect_acquaintances sys;
        install_faults sys;
        Ok sys
      end)

let build_exn ?opts cfg =
  match build ?opts cfg with
  | Ok sys -> sys
  | Error errors -> invalid_arg ("System.build: " ^ String.concat "; " errors)

(* ---- the two-phase parallel step ------------------------------------- *)

(* An event may join a fanned-out batch when its handler is a pure
   node-local function of the destination's state: the payload mints
   no value identities, the destination is one of our protocol nodes
   (the super-peer shares control state), and no user callback on that
   node would observe cross-node execution order. *)
let batch_eligible sys (msg : Payload.t Codb_net.Message.t) =
  Payload.parallel_safe msg.Codb_net.Message.payload
  &&
  match Hashtbl.find_opt sys.sys_nodes (Peer_id.to_string msg.Codb_net.Message.dst) with
  | Some node -> not (Node.has_live_callbacks node)
  | None -> false

let replay_event sys (msg : Payload.t Codb_net.Message.t) buf =
  let dst_name = Peer_id.to_string msg.Codb_net.Message.dst in
  (* the Delivered trace first, exactly where the sequential handler
     wrapper records it, then the handler's effects in program order *)
  trace_event sys ~direction:Trace.Delivered ~src:msg.Codb_net.Message.src
    ~dst:msg.Codb_net.Message.dst
    (Payload.describe msg.Codb_net.Message.payload);
  match Hashtbl.find_opt sys.sys_runtimes dst_name with
  | None -> assert false (* eligibility required a runtime *)
  | Some rt ->
      List.iter
        (function
          | Ef_send { ef_dst; ef_payload } ->
              ignore (rt.Runtime.send ~dst:ef_dst ef_payload : bool)
          | Ef_schedule { ef_delay; ef_action } ->
              rt.Runtime.schedule ~delay:ef_delay ef_action
          | Ef_connect peer -> rt.Runtime.connect peer
          | Ef_disconnect peer -> rt.Runtime.disconnect peer)
        (List.rev buf.effects)

(* Run one batch of same-time deliveries: handlers fan out across the
   domain pool (grouped by destination, so each node's state is only
   ever touched by one domain), outbound effects collect into
   per-event buffers, and the simulation domain replays every buffer
   at the barrier in delivery order.  Replay goes through the real
   runtime closures, so everything order-sensitive — message seqs,
   event seqs, fault-RNG draws, traces, byte counters — happens in
   exactly the order the sequential loop would have produced. *)
let run_batch sys pool (messages : Payload.t Codb_net.Message.t array) =
  let n = Array.length messages in
  if n < sys.sys_opts.Options.par_threshold then
    (* too small to pay the fan-out: run inline, sequentially (the
       network already accounted the deliveries) *)
    Array.iter
      (fun m ->
        match Network.handler_of sys.sys_net m.Codb_net.Message.dst with
        | Some h -> h m
        | None -> ())
      messages
  else begin
    (* phase 0, sequential: first contact with every wire value, so
       slot assignment in the intern table keeps insertion order *)
    Array.iter (fun m -> Payload.intern_values m.Codb_net.Message.payload) messages;
    let captures = Array.map (fun _ -> { effects = [] }) messages in
    (* group by destination, preserving delivery order within a node *)
    let order = ref [] in
    let buckets : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i m ->
        let key = Peer_id.to_string m.Codb_net.Message.dst in
        match Hashtbl.find_opt buckets key with
        | Some l -> l := i :: !l
        | None ->
            Hashtbl.add buckets key (ref [ i ]);
            order := key :: !order)
      messages;
    let job key =
      let idxs = List.rev !(Hashtbl.find buckets key) in
      let rt = Hashtbl.find sys.sys_runtimes key in
      let cell = Hashtbl.find sys.sys_captures key in
      fun () ->
        List.iter
          (fun i ->
            cell := Some captures.(i);
            Dbm.handle rt messages.(i))
          idxs;
        cell := None
    in
    let jobs = Array.of_list (List.rev_map job !order) in
    (* phase 1, parallel: node-local handling under the minting freeze *)
    Codb_relalg.Value.freeze_minting true;
    let outcome = try Ok (Codb_par.Pool.run pool jobs) with exn -> Error exn in
    Codb_relalg.Value.freeze_minting false;
    Hashtbl.iter (fun _ cell -> cell := None) sys.sys_captures;
    match outcome with
    | Error exn ->
        (* a handler raised: the batch's captured effects are
           discarded and the (deterministically chosen) exception
           propagates, exactly as a failing sequential handler would
           abort the run mid-event *)
        raise exn
    | Ok () ->
        (* phase 2, sequential: replay in delivery order *)
        Array.iteri (fun i m -> replay_event sys m captures.(i)) messages
  end

let run_parallel sys ~max_events =
  let pool = Codb_par.Pool.shared ~domains:sys.sys_opts.Options.domains in
  let eligible = batch_eligible sys in
  let rec loop count =
    if count >= max_events then count
    else
      match Network.try_batch sys.sys_net ~eligible ~limit:(max_events - count) with
      | Network.Drained -> count
      | Network.Stepped n -> if n = 0 then count else loop (count + n)
      | Network.Deliveries messages ->
          run_batch sys pool messages;
          loop (count + Array.length messages)
  in
  loop 0

let run ?max_events sys =
  let max_events =
    Option.value ~default:sys.sys_opts.Options.max_update_events max_events
  in
  if sys.sys_opts.Options.domains > 1 then run_parallel sys ~max_events
  else Network.run ~max_events sys.sys_net

let now sys = Network.now sys.sys_net

let start_update sys ~initiator =
  let n = node sys initiator in
  let uid = Ids.update_id n.Node.node_id (Node.fresh_serial n) in
  Update.initiate (runtime sys initiator) uid;
  uid

let run_update sys ~initiator =
  let uid = start_update sys ~initiator in
  let _ = run sys in
  uid

let start_scoped_update sys ~at ~rels =
  let n = node sys at in
  let uid = Ids.update_id n.Node.node_id (Node.fresh_serial n) in
  Update.initiate_scoped (runtime sys at) uid ~rels;
  uid

let run_scoped_update sys ~at query =
  let uid = start_scoped_update sys ~at ~rels:(Codb_cq.Query.body_relations query) in
  let _ = run sys in
  uid

type query_outcome = {
  qo_id : Ids.query_id;
  qo_answers : Tuple.t list;
  qo_certain : Tuple.t list;
  qo_started : float;
  qo_finished : float;
  qo_data_msgs : int;
  qo_bytes : int;
  qo_complete : bool;
}

let run_query ?on_partial sys ~at query =
  let n = node sys at in
  let qid = Ids.query_id n.Node.node_id (Node.fresh_serial n) in
  let root_ref = Query_engine.start ?on_answer:on_partial (runtime sys at) qid query in
  let _ = run sys in
  match Query_engine.result n root_ref with
  | None -> failwith "System.run_query: the query diffusion did not complete"
  | Some answers ->
      let qs =
        match Stats.find_query n.Node.stats qid with
        | Some qs -> qs
        | None -> assert false
      in
      {
        qo_id = qid;
        qo_answers = answers;
        qo_certain = Eval.certain answers;
        qo_started = qs.Stats.qs_started;
        qo_finished = Option.value ~default:qs.Stats.qs_started qs.Stats.qs_finished;
        qo_data_msgs = qs.Stats.qs_data_msgs;
        qo_bytes = qs.Stats.qs_bytes_in;
        qo_complete = qs.Stats.qs_complete;
      }

let local_answers sys ~at query =
  Wrapper.user_answers ~opts:sys.sys_opts (node sys at).Node.store query

let superpeer sys =
  match sys.sys_superpeer with
  | Some sp -> sp
  | None ->
      let peers =
        List.map (fun name -> (node sys name).Node.node_id) (node_names sys)
      in
      let sp = Superpeer.create ~net:sys.sys_net ~peers in
      sys.sys_superpeer <- Some sp;
      sp

let broadcast_rules sys cfg =
  sys.sys_config <- cfg;
  let _version = Superpeer.broadcast_rules (superpeer sys) cfg in
  let _ = run sys in
  ()

let collect_stats sys =
  let sp = superpeer sys in
  Superpeer.request_stats sp;
  let _ = run sys in
  Superpeer.collected sp

let snapshots sys =
  let snap name =
    let n = node sys name in
    Stats.snapshot ~store_tuples:(Database.cardinal n.Node.store)
      ?cache:(Node.cache_snapshot n) n.Node.stats
  in
  List.map snap (node_names sys)

let discover sys ~at ~ttl =
  let rt = runtime sys at in
  let _probe = Discovery.start rt ~ttl in
  let _ = run sys in
  Peer_id.Set.elements (node sys at).Node.known_peers

let add_node sys decl =
  sys.sys_config <- { sys.sys_config with Config.nodes = sys.sys_config.Config.nodes @ [ decl ] };
  let node = install_node sys decl in
  (match sys.sys_superpeer with
  | Some sp -> Superpeer.track sp node.Node.node_id
  | None -> ());
  connect_acquaintances sys

let enable_trace ?capacity sys =
  match sys.sys_trace with
  | Some trace -> trace
  | None ->
      let trace = Trace.create ?capacity () in
      sys.sys_trace <- Some trace;
      trace

let trace sys = sys.sys_trace

let export_stores sys =
  List.map
    (fun name -> (name, Codb_relalg.Csv.dump_database (node sys name).Node.store))
    (node_names sys)

let import_stores sys dumps =
  List.fold_left
    (fun acc (name, text) ->
      let n = node sys name in
      let added = Codb_relalg.Csv.load_database n.Node.store text in
      if added > 0 then begin
        Node.note_local_write n;
        Durable.note_bulk_load n;
        (* bulk loads bypass the per-tuple delta feed: re-seed any
           standing queries hosted here by a from-scratch diff *)
        Sub_engine.refresh_all (runtime sys name) ~tag:"import"
      end;
      acc + added)
    0 dumps

let insert_fact sys ~at ~rel tuple =
  let n = node sys at in
  let inserted = Database.insert n.Node.store rel tuple in
  if inserted then begin
    Node.note_local_write n;
    (* the commit point: the write is in the store and hits the WAL
       before any subscription delta derived from it leaves the node *)
    Durable.log_insert n ~rel [ tuple ];
    Sub_engine.on_store_delta (runtime sys at) ~rel ~delta:[ tuple ]
      ~tag:(fun () -> "local-write")
  end;
  inserted

let subscribe sys ~at ?on_delta query =
  Sub_engine.register_local (runtime sys at) ?on_delta query

let unsubscribe sys ~at sub_id = Sub_engine.unregister_local (runtime sys at) sub_id

let subscribe_remote sys ~subscriber ~host ?on_delta query =
  Sub_engine.subscribe_remote (runtime sys subscriber)
    ~host:(node sys host).Node.node_id ?on_delta query

let unsubscribe_remote sys ~subscriber sub_id =
  Sub_engine.unsubscribe_remote (runtime sys subscriber) sub_id

let subscription_answers sys ~at sub_id =
  let n = node sys at in
  match n.Node.subs with
  | Some reg when Codb_sub.Registry.find reg sub_id <> None ->
      Option.map
        (fun e -> Codb_sub.Subscription.answers e.Codb_sub.Registry.e_sub)
        (Codb_sub.Registry.find reg sub_id)
  | _ ->
      Option.map Codb_sub.Mirror.answers
        (Hashtbl.find_opt n.Node.sub_mirrors sub_id)

let mirror sys ~at sub_id = Hashtbl.find_opt (node sys at).Node.sub_mirrors sub_id

let total_tuples sys =
  List.fold_left
    (fun acc name -> acc + Database.cardinal (node sys name).Node.store)
    0 (node_names sys)

type durability_report = {
  dr_wal_records : int;
  dr_wal_bytes : int;
  dr_snapshots : int;
  dr_snapshot_bytes : int;
  dr_recoveries : int;
  dr_recovered_records : int;
  dr_replayed_bytes : int;
  dr_recovery_ms : float;
}

(* Crashed incarnations' counters live in the accumulators; the
   current incarnation's in its live WAL. *)
let durability_report sys =
  Hashtbl.fold
    (fun name dn acc ->
      let live_records, live_bytes, live_snaps, live_snap_bytes =
        match (node sys name).Node.wal with
        | Some wal ->
            let c = Codb_store.Wal.counters wal in
            ( c.Codb_store.Wal.records_written,
              c.Codb_store.Wal.bytes_written,
              c.Codb_store.Wal.snapshots_taken,
              c.Codb_store.Wal.snapshot_bytes )
        | None -> (0, 0, 0, 0)
      in
      {
        dr_wal_records = acc.dr_wal_records + dn.dn_records + live_records;
        dr_wal_bytes = acc.dr_wal_bytes + dn.dn_bytes + live_bytes;
        dr_snapshots = acc.dr_snapshots + dn.dn_snapshots + live_snaps;
        dr_snapshot_bytes =
          acc.dr_snapshot_bytes + dn.dn_snapshot_bytes + live_snap_bytes;
        dr_recoveries = acc.dr_recoveries + dn.dn_recoveries;
        dr_recovered_records =
          acc.dr_recovered_records + dn.dn_recovered_records;
        dr_replayed_bytes = acc.dr_replayed_bytes + dn.dn_replayed_bytes;
        dr_recovery_ms = acc.dr_recovery_ms +. dn.dn_recovery_ms;
      })
    sys.sys_dur
    {
      dr_wal_records = 0;
      dr_wal_bytes = 0;
      dr_snapshots = 0;
      dr_snapshot_bytes = 0;
      dr_recoveries = 0;
      dr_recovered_records = 0;
      dr_replayed_bytes = 0;
      dr_recovery_ms = 0.;
    }

let store_digest sys name = Durable.database_digest (node sys name).Node.store

let store_digests sys =
  List.map (fun name -> (name, store_digest sys name)) (node_names sys)
