(** The whole-network facade: build a coDB network from a
    configuration, run global updates and queries, read statistics.

    This module plays the role of the deployment scripts around the
    original system — everything inside it goes through the same
    message protocol the nodes use among themselves. *)

module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network
module Config = Codb_cq.Config
module Tuple = Codb_relalg.Tuple

type t

val build : ?opts:Options.t -> Config.t -> (t, string list) result
(** Validate the options ({!Options.validate}) and the configuration,
    create all nodes, load their facts, install coordination rules
    (and, when [opts.use_query_cache], the per-node query-answer
    caches) and open the pipes between acquaintances. *)

val build_exn : ?opts:Options.t -> Config.t -> t
(** @raise Invalid_argument with the concatenated validation errors. *)

val opts : t -> Options.t

val net : t -> Payload.t Network.t

val link_dict_stats : t -> Codb_net.Link_dict.stats
(** Aggregate state of the per-link incremental string dictionaries
    (all zero unless [Options.link_dicts] trained them). *)

val config : t -> Config.t

val node : t -> string -> Node.t
(** @raise Not_found *)

val runtime : t -> string -> Runtime.t
(** @raise Not_found *)

val node_names : t -> string list
(** Sorted. *)

val run : ?max_events:int -> t -> int
(** Drain the event queue; returns events processed. *)

val now : t -> float

(** {1 Global updates} *)

val start_update : t -> initiator:string -> Ids.update_id
(** Initiate a global update without running the simulation (compose
    with {!run} for concurrent scenarios). *)

val run_update : t -> initiator:string -> Ids.update_id
(** Initiate and run the network to quiescence (bounded by
    [opts.max_update_events]). *)

val start_scoped_update : t -> at:string -> rels:string list -> Ids.update_id
(** Initiate a query-dependent update (see {!Update.initiate_scoped})
    without running the simulation. *)

val run_scoped_update : t -> at:string -> Codb_cq.Query.t -> Ids.update_id
(** Materialise, at [at], exactly what the query needs (its body
    relations, transitively through the relevant coordination rules),
    then run to quiescence.  Afterwards {!local_answers} at [at]
    answers the query without network traffic. *)

(** {1 Query answering} *)

type query_outcome = {
  qo_id : Ids.query_id;
  qo_answers : Tuple.t list;
  qo_certain : Tuple.t list;
  qo_started : float;
  qo_finished : float;
  qo_data_msgs : int;
  qo_bytes : int;
  qo_complete : bool;
      (** [false]: some sub-request in the diffusion tree was declared
          failed, so [qo_answers] is an explicit lower bound (partial
          answer) rather than the query's full answer *)
}

val run_query :
  ?on_partial:(Tuple.t list -> unit) -> t -> at:string -> Codb_cq.Query.t ->
  query_outcome
(** Pose a query at a node and run the network to quiescence.
    [on_partial] streams answer batches as they become available
    (local answers first, remote ones as they arrive).
    @raise Failure if the diffusion does not complete (should not
    happen on a static network). *)

val local_answers : t -> at:string -> Codb_cq.Query.t -> Tuple.t list
(** Evaluate a query on the node's local store only (what the node
    answers after a global update without contacting anyone). *)

(** {1 Control plane} *)

val superpeer : t -> Superpeer.t
(** Created lazily on first use (with control pipes to all nodes). *)

val broadcast_rules : t -> Config.t -> unit
(** Have the super-peer broadcast a new rules file and run the network
    until the reconfiguration settles. *)

val collect_stats : t -> Stats.snapshot list
(** Message-based statistics collection through the super-peer. *)

val snapshots : t -> Stats.snapshot list
(** Direct (out-of-band) snapshot of every node's statistics. *)

val discover : t -> at:string -> ttl:int -> Peer_id.t list
(** Run a discovery probe and return the origin's known peers. *)

val crash_node : t -> string -> unit
(** Simulate a node crash: the handler is removed (messages to it drop
    at delivery time), its pipes close and its volatile protocol state
    is cleared.  What else survives depends on [opts.durability]:
    under [Dur_off] (the lenient legacy model) the store, lineage,
    transport state and statistics remain in memory; under
    [Dur_volatile] and [Dur_wal] the crash is honest — the store
    resets to the node's declaration and the transport state is gone,
    leaving only the declaration (and, for [Dur_wal], the WAL
    backend's bytes) for the restart.  @raise Not_found on an unknown
    node. *)

val restart_node : t -> string -> unit
(** Bring a crashed node back: clean volatile state, a fresh cache
    with a bumped epoch, the handler re-registered and the
    acquaintance (and super-peer) pipes reopened.  Under
    [Dur_volatile] the node then starts a fresh transport sequence
    epoch and issues a catch-up global update (clear-and-refetch);
    under [Dur_wal] it recovers store, lineage, transport sequence
    state, sent-filters and subscriptions from its snapshot and log
    tail ({!Durable.recover}), re-arms its mirrors and re-diffs its
    hosted subscriptions — no catch-up update, the reliable
    transport's retransmissions deliver the in-flight tail. *)

val add_node : t -> Config.node_decl -> unit
(** Dynamic arrival of a node (paper principle (c)).  @raise
    Invalid_argument on duplicate names. *)

val enable_trace : ?capacity:int -> t -> Trace.t
(** Attach (or return the existing) protocol trace: every message sent
    and delivered from now on is recorded with its simulated
    timestamp. *)

val trace : t -> Trace.t option

val export_stores : t -> (string * string) list
(** Every node's Local Database as a sectioned CSV document (see
    {!Codb_relalg.Csv.dump_database}), sorted by node name.  Marked
    nulls round-trip faithfully. *)

val import_stores : t -> (string * string) list -> int
(** Load previously exported stores back into the (already built)
    network; returns the number of new tuples.  @raise Not_found on an
    unknown node; {!Codb_relalg.Csv.Parse_error} on malformed data. *)

val insert_fact : t -> at:string -> rel:string -> Tuple.t -> bool
(** Insert a fact into a node's Local Database through its Wrapper;
    [true] iff it was new.  The fact reaches the rest of the network
    on the next (global or scoped) update.  Any standing query at the
    node whose body reads [rel] absorbs the tuple incrementally.
    @raise Not_found / [Invalid_argument] on unknown node, relation,
    or schema mismatch. *)

(** {1 Standing queries}

    Available when [opts.subscriptions] is on; see {!Sub_engine} and
    {!Codb_sub} for the protocol.  All subscription state is volatile:
    a crash tears it down, and on restart the subscribers re-arm their
    mirrors automatically (see {!restart_node}). *)

val subscribe :
  t -> at:string -> ?on_delta:(Codb_sub.Subscription.delta -> unit) ->
  Codb_cq.Query.t -> (string, string) result
(** Register a standing query at a node for a local client; returns
    the subscription id.  The answer set seeds from the current store
    (delivered to [on_delta] as the ["seed"] delta) and is thereafter
    maintained incrementally from update and local-write deltas. *)

val unsubscribe : t -> at:string -> string -> bool

val subscribe_remote :
  t -> subscriber:string -> host:string ->
  ?on_delta:(Codb_sub.Subscription.delta -> unit) -> Codb_cq.Query.t ->
  (string, string) result
(** Subscribe [subscriber] to a standing query hosted at [host]; the
    returned id names the local mirror, which tracks the host's answer
    set through pushed [Answer_delta]/[Answer_batch] messages (run the
    network to let the registration and seed delta propagate). *)

val unsubscribe_remote : t -> subscriber:string -> string -> bool

val subscription_answers : t -> at:string -> string -> Tuple.t list option
(** The current answer set of a subscription hosted at [at] or
    mirrored there, sorted; [None] if the id is unknown. *)

val mirror : t -> at:string -> string -> Codb_sub.Mirror.t option

val total_tuples : t -> int

(** {1 Durability} *)

type durability_report = {
  dr_wal_records : int;  (** log records appended, all nodes, all lives *)
  dr_wal_bytes : int;  (** framed log bytes written *)
  dr_snapshots : int;
  dr_snapshot_bytes : int;
  dr_recoveries : int;  (** WAL recoveries performed *)
  dr_recovered_records : int;  (** log records replayed by recoveries *)
  dr_replayed_bytes : int;  (** snapshot + log bytes consumed *)
  dr_recovery_ms : float;  (** wall-clock spent inside {!Durable.recover} *)
}

val durability_report : t -> durability_report
(** Aggregate WAL activity across the network, including counters from
    crashed WAL incarnations.  All zeroes unless
    [opts.durability = Dur_wal]. *)

val store_digest : t -> string -> int
(** Order-insensitive digest of one node's store
    ({!Durable.database_digest}).  @raise Not_found *)

val store_digests : t -> (string * int) list
(** Every node's store digest, sorted by node name — the
    store-equivalence gate of the recovery experiments. *)
