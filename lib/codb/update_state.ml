module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set

type link_state = Link_open | Link_closed

(* One rule's coalesced firings inside a destination buffer: a dedup set to
   kill same-window duplicates plus the reverse insertion order so flushed
   batches stay deterministic. *)
type buffer_entry = {
  mutable be_hops : int;
  mutable be_set : Tuple_set.t;
  mutable be_rev : Tuple.t list;
}

type dest_buffer = {
  db_entries : (string, buffer_entry) Hashtbl.t;
  mutable db_tuples : int;
  mutable db_scheduled : bool;
}

type t = {
  ust_update : Ids.update_id;
  ust_initiator : bool;
  ust_scoped : bool;
  mutable ust_parent : Peer_id.t option;
  mutable ust_engaged : bool;
  mutable ust_deficit : int;
  ust_out : (string, link_state) Hashtbl.t;
  ust_in : (string, link_state) Hashtbl.t;
  ust_sent : (string, Sent_filter.t) Hashtbl.t;
  ust_bloom_bits : int;
  ust_ring_capacity : int;
  ust_wire : (Peer_id.t, dest_buffer) Hashtbl.t;
  mutable ust_pending : int;
  mutable ust_terminated : bool;
  mutable ust_finished : bool;
  mutable ust_activity : int;
  ust_unacked : (Peer_id.t, int) Hashtbl.t;
  ust_deferred : (Peer_id.t, (string * bool) list) Hashtbl.t;
}

let create ~initiator ?(scoped = false) ?(bloom_bits = 0) ?(ring_capacity = 512)
    ~outgoing ~incoming update_id =
  let out = Hashtbl.create 8 and inl = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace out r Link_open) outgoing;
  List.iter (fun r -> Hashtbl.replace inl r Link_open) incoming;
  {
    ust_update = update_id;
    ust_initiator = initiator;
    ust_scoped = scoped;
    ust_parent = None;
    ust_engaged = false;
    ust_deficit = 0;
    ust_out = out;
    ust_in = inl;
    ust_sent = Hashtbl.create 8;
    ust_bloom_bits = bloom_bits;
    ust_ring_capacity = ring_capacity;
    ust_wire = Hashtbl.create 8;
    ust_pending = 0;
    ust_terminated = false;
    ust_finished = false;
    ust_activity = 0;
    ust_unacked = Hashtbl.create 8;
    ust_deferred = Hashtbl.create 8;
  }

let touch st = st.ust_activity <- st.ust_activity + 1

let out_state st rule =
  Option.value ~default:Link_closed (Hashtbl.find_opt st.ust_out rule)

let in_state st rule = Option.value ~default:Link_closed (Hashtbl.find_opt st.ust_in rule)

let is_active_in st rule = Hashtbl.mem st.ust_in rule

let is_active_out st rule = Hashtbl.mem st.ust_out rule

let activate_out st rule =
  if not (Hashtbl.mem st.ust_out rule) then Hashtbl.replace st.ust_out rule Link_open

let activate_in st rule =
  if not (Hashtbl.mem st.ust_in rule) then Hashtbl.replace st.ust_in rule Link_open

let close_out st rule = Hashtbl.replace st.ust_out rule Link_closed

let close_in st rule = Hashtbl.replace st.ust_in rule Link_closed

let all_out_closed st =
  Hashtbl.fold (fun _ state acc -> acc && state = Link_closed) st.ust_out true

(* ---- Per-incoming-link sent filters --------------------------------- *)

let sent_filter st rule =
  match Hashtbl.find_opt st.ust_sent rule with
  | Some f -> f
  | None ->
      let f =
        Sent_filter.create ~bloom_bits:st.ust_bloom_bits
          ~ring_capacity:st.ust_ring_capacity
      in
      Hashtbl.add st.ust_sent rule f;
      f

let already_sent st rule tuple = Sent_filter.already_sent (sent_filter st rule) tuple

let add_sent st rule tuples =
  let f = sent_filter st rule in
  List.iter (Sent_filter.note_sent f) tuples

let sent_tracked st rule =
  match Hashtbl.find_opt st.ust_sent rule with
  | Some f -> Sent_filter.tracked f
  | None -> 0

let possible_resends st =
  Hashtbl.fold (fun _ f acc -> acc + Sent_filter.possible_resends f) st.ust_sent 0

(* ---- Per-destination wire buffers ----------------------------------- *)

let dest_buffer st dst =
  match Hashtbl.find_opt st.ust_wire dst with
  | Some b -> b
  | None ->
      let b = { db_entries = Hashtbl.create 4; db_tuples = 0; db_scheduled = false } in
      Hashtbl.add st.ust_wire dst b;
      b

let buffer_add st ~dst ~rule ~hops tuples =
  let b = dest_buffer st dst in
  let e =
    match Hashtbl.find_opt b.db_entries rule with
    | Some e -> e
    | None ->
        let e = { be_hops = hops; be_set = Tuple_set.empty; be_rev = [] } in
        Hashtbl.add b.db_entries rule e;
        e
  in
  e.be_hops <- max e.be_hops hops;
  let added =
    List.fold_left
      (fun acc t ->
        if Tuple_set.mem t e.be_set then acc
        else begin
          e.be_set <- Tuple_set.add t e.be_set;
          e.be_rev <- t :: e.be_rev;
          acc + 1
        end)
      0 tuples
  in
  b.db_tuples <- b.db_tuples + added;
  st.ust_pending <- st.ust_pending + added;
  added

let buffer_retract st ~dst ~rule tuple =
  match Hashtbl.find_opt st.ust_wire dst with
  | None -> false
  | Some b -> (
      match Hashtbl.find_opt b.db_entries rule with
      | Some e when Tuple_set.mem tuple e.be_set ->
          e.be_set <- Tuple_set.remove tuple e.be_set;
          e.be_rev <- List.filter (fun t -> not (Tuple.equal t tuple)) e.be_rev;
          b.db_tuples <- b.db_tuples - 1;
          st.ust_pending <- st.ust_pending - 1;
          true
      | Some _ | None -> false)

let buffer_size st ~dst =
  match Hashtbl.find_opt st.ust_wire dst with Some b -> b.db_tuples | None -> 0

let take_buffer st ~dst =
  match Hashtbl.find_opt st.ust_wire dst with
  | None -> []
  | Some b ->
      let entries =
        Hashtbl.fold
          (fun rule e acc ->
            if e.be_rev = [] then acc else (rule, e.be_hops, List.rev e.be_rev) :: acc)
          b.db_entries []
      in
      st.ust_pending <- st.ust_pending - b.db_tuples;
      b.db_tuples <- 0;
      Hashtbl.reset b.db_entries;
      (* deterministic batch layout regardless of hash order *)
      List.sort (fun (r1, _, _) (r2, _, _) -> String.compare r1 r2) entries

let pending_tuples st = st.ust_pending

let buffered_dsts st =
  List.sort Peer_id.compare
    (Hashtbl.fold (fun dst b acc -> if b.db_tuples > 0 then dst :: acc else acc)
       st.ust_wire [])

let flush_scheduled st ~dst =
  match Hashtbl.find_opt st.ust_wire dst with Some b -> b.db_scheduled | None -> false

let set_flush_scheduled st ~dst flag = (dest_buffer st dst).db_scheduled <- flag

(* ---- Per-destination transport settlement ---------------------------- *)

let dst_unacked st ~dst = Option.value ~default:0 (Hashtbl.find_opt st.ust_unacked dst)

let incr_unacked st ~dst = Hashtbl.replace st.ust_unacked dst (dst_unacked st ~dst + 1)

let decr_unacked st ~dst =
  Hashtbl.replace st.ust_unacked dst (max 0 (dst_unacked st ~dst - 1))

let defer_close st ~dst ~rule ~global =
  let tail = Option.value ~default:[] (Hashtbl.find_opt st.ust_deferred dst) in
  Hashtbl.replace st.ust_deferred dst ((rule, global) :: tail)

let take_deferred_closes st ~dst =
  match Hashtbl.find_opt st.ust_deferred dst with
  | None -> []
  | Some closes ->
      Hashtbl.remove st.ust_deferred dst;
      List.rev closes
