module Peer_id = Codb_net.Peer_id
module Tuple_set = Codb_relalg.Relation.Tuple_set

type link_state = Link_open | Link_closed

type t = {
  ust_update : Ids.update_id;
  ust_initiator : bool;
  ust_scoped : bool;
  mutable ust_parent : Peer_id.t option;
  mutable ust_engaged : bool;
  mutable ust_deficit : int;
  ust_out : (string, link_state) Hashtbl.t;
  ust_in : (string, link_state) Hashtbl.t;
  ust_sent : (string, Tuple_set.t) Hashtbl.t;
  mutable ust_terminated : bool;
  mutable ust_finished : bool;
}

let create ~initiator ?(scoped = false) ~outgoing ~incoming update_id =
  let out = Hashtbl.create 8 and inl = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace out r Link_open) outgoing;
  List.iter (fun r -> Hashtbl.replace inl r Link_open) incoming;
  {
    ust_update = update_id;
    ust_initiator = initiator;
    ust_scoped = scoped;
    ust_parent = None;
    ust_engaged = false;
    ust_deficit = 0;
    ust_out = out;
    ust_in = inl;
    ust_sent = Hashtbl.create 8;
    ust_terminated = false;
    ust_finished = false;
  }

let out_state st rule =
  Option.value ~default:Link_closed (Hashtbl.find_opt st.ust_out rule)

let in_state st rule = Option.value ~default:Link_closed (Hashtbl.find_opt st.ust_in rule)

let is_active_in st rule = Hashtbl.mem st.ust_in rule

let is_active_out st rule = Hashtbl.mem st.ust_out rule

let activate_out st rule =
  if not (Hashtbl.mem st.ust_out rule) then Hashtbl.replace st.ust_out rule Link_open

let activate_in st rule =
  if not (Hashtbl.mem st.ust_in rule) then Hashtbl.replace st.ust_in rule Link_open

let close_out st rule = Hashtbl.replace st.ust_out rule Link_closed

let close_in st rule = Hashtbl.replace st.ust_in rule Link_closed

let all_out_closed st =
  Hashtbl.fold (fun _ state acc -> acc && state = Link_closed) st.ust_out true

let sent_cache st rule =
  Option.value ~default:Tuple_set.empty (Hashtbl.find_opt st.ust_sent rule)

let add_sent st rule tuples =
  let existing = sent_cache st rule in
  Hashtbl.replace st.ust_sent rule
    (List.fold_left (fun acc t -> Tuple_set.add t acc) existing tuples)
