module Peer_id = Codb_net.Peer_id
module Codec = Codb_net.Codec
module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value
module Specialize = Codb_cq.Specialize

type update_scope = Global | For_rule of string

type batch_entry = { be_rule : string; be_hops : int; be_tuples : Tuple.t list }

type sub_entry = {
  se_sub : string;
  se_adds : Tuple.t list;
  se_retracts : Tuple.t list;
  se_tag : string;
}

type t =
  | Update_request of { update_id : Ids.update_id; scope : update_scope }
  | Update_data of {
      update_id : Ids.update_id;
      rule_id : string;
      tuples : Tuple.t list;
      hops : int;
      global : bool;
    }
  | Update_batch of {
      update_id : Ids.update_id;
      entries : batch_entry list;
      global : bool;
    }
  | Update_link_closed of { update_id : Ids.update_id; rule_id : string; global : bool }
  | Update_ack of { update_id : Ids.update_id }
  | Update_terminated of { update_id : Ids.update_id }
  | Query_request of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      label : Peer_id.t list;
      constraints : Specialize.t;
    }
  | Query_data of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      tuples : Tuple.t list;
    }
  | Query_done of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      complete : bool;
    }
  | Rules_file of { version : int; text : string }
  | Start_update
  | Stats_request
  | Stats_response of { stats : Stats.snapshot }
  | Discovery_probe of { probe_id : string; ttl : int; path : Peer_id.t list }
  | Discovery_reply of { probe_id : string; path : Peer_id.t list; peers : Peer_id.t list }
  | Seq of { seq : int; inner : t }
  | Seq_ack of { seq : int }
  | Sub_register of { sub_id : string; query_text : string }
  | Sub_registered of { sub_id : string; accepted : bool; reason : string }
  | Sub_unregister of { sub_id : string }
  | Answer_delta of {
      sub_id : string;
      adds : Tuple.t list;
      retracts : Tuple.t list;
      tag : string;
    }
  | Answer_batch of { entries : sub_entry list }

let tuples_bytes tuples = List.fold_left (fun acc t -> acc + Tuple.size_bytes t) 0 tuples

let peers_bytes peers =
  List.fold_left (fun acc p -> acc + 4 + String.length (Peer_id.to_string p)) 0 peers

let rec size = function
  | Update_request { scope = Global; _ } -> 24
  | Update_request { scope = For_rule rule; _ } -> 24 + String.length rule
  | Update_data { tuples; _ } -> 32 + tuples_bytes tuples
  | Update_batch { entries; _ } ->
      List.fold_left
        (fun acc e -> acc + 8 + String.length e.be_rule + tuples_bytes e.be_tuples)
        24 entries
  | Update_link_closed _ -> 28
  | Update_ack _ -> 20
  | Update_terminated _ -> 20
  | Query_request { label; request_ref; rule_id; constraints; _ } ->
      40 + String.length request_ref + String.length rule_id + peers_bytes label
      + Specialize.size_bytes constraints
  | Query_data { tuples; request_ref; _ } ->
      32 + String.length request_ref + tuples_bytes tuples
  | Query_done { request_ref; _ } -> 24 + String.length request_ref
  | Rules_file { text; _ } -> 16 + String.length text
  | Start_update -> 8
  | Stats_request -> 8
  | Stats_response { stats } -> Stats.snapshot_size_bytes stats
  | Discovery_probe { path; probe_id; _ } -> 16 + String.length probe_id + peers_bytes path
  | Discovery_reply { path; peers; probe_id } ->
      16 + String.length probe_id + peers_bytes path + peers_bytes peers
  | Seq { inner; _ } -> 8 + size inner
  | Seq_ack _ -> 12
  | Sub_register { sub_id; query_text } ->
      16 + String.length sub_id + String.length query_text
  | Sub_registered { sub_id; reason; _ } ->
      16 + String.length sub_id + String.length reason
  | Sub_unregister { sub_id } -> 12 + String.length sub_id
  | Answer_delta { sub_id; adds; retracts; tag } ->
      20 + String.length sub_id + String.length tag + tuples_bytes adds
      + tuples_bytes retracts
  | Answer_batch { entries } ->
      List.fold_left
        (fun acc e ->
          acc + 8 + String.length e.se_sub + String.length e.se_tag
          + tuples_bytes e.se_adds + tuples_bytes e.se_retracts)
        12 entries

(* ---- Parallel-batch classification ---------------------------------- *)

(* A payload is parallel-safe when handling it is a pure function of
   the destination node's own state plus outbound effects: no new
   value identities are minted (hole instantiation mints marked nulls
   through the process-global counter) and no cross-node control state
   moves (rules installation, crash/restart bookkeeping, discovery and
   subscription registration mutate routing/registry state that later
   same-time events may read).  Anything excluded here simply runs
   sequentially — classification is a throughput decision, never a
   correctness one, because [Value.freeze_minting] turns a wrong
   [true] into a loud failure. *)
let tuples_safe tuples = not (List.exists Tuple.has_hole tuples)

let rec parallel_safe = function
  | Update_request _ | Update_link_closed _ | Update_ack _ | Update_terminated _
  | Query_request _ | Query_done _ | Seq_ack _ ->
      true
  | Update_data { tuples; _ } | Query_data { tuples; _ } -> tuples_safe tuples
  | Update_batch { entries; _ } -> List.for_all (fun e -> tuples_safe e.be_tuples) entries
  | Answer_delta { adds; retracts; _ } -> tuples_safe adds && tuples_safe retracts
  | Answer_batch { entries } ->
      List.for_all (fun e -> tuples_safe e.se_adds && tuples_safe e.se_retracts) entries
  | Seq { inner; _ } -> parallel_safe inner
  | Rules_file _ | Start_update | Stats_request | Stats_response _ | Discovery_probe _
  | Discovery_reply _ | Sub_register _ | Sub_registered _ | Sub_unregister _ ->
      false

(* Pre-intern every value a payload carries.  The parallel driver runs
   this on the simulation domain, in popped order, before fanning a
   batch out: interning is insertion-ordered, so first contact with a
   wire value must happen sequentially — after this walk, handler-side
   packing of the same values is a read-only table hit, legal under
   the minting freeze. *)
let intern_tuples tuples =
  List.iter
    (fun t -> Array.iter (fun v -> ignore (Codb_relalg.Intern.pack v : int)) t)
    tuples

let intern_constraints = function
  | Specialize.Any -> ()
  | Specialize.One_of alts ->
      List.iter
        (List.iter (fun { Specialize.p_left; p_right; _ } ->
             List.iter
               (function
                 | Specialize.Const v -> ignore (Codb_relalg.Intern.pack v : int)
                 | Specialize.Col _ -> ())
               [ p_left; p_right ]))
        alts

let rec intern_values = function
  | Update_data { tuples; _ } | Query_data { tuples; _ } -> intern_tuples tuples
  | Update_batch { entries; _ } -> List.iter (fun e -> intern_tuples e.be_tuples) entries
  | Query_request { constraints; _ } -> intern_constraints constraints
  | Answer_delta { adds; retracts; _ } ->
      intern_tuples adds;
      intern_tuples retracts
  | Answer_batch { entries } ->
      List.iter
        (fun e ->
          intern_tuples e.se_adds;
          intern_tuples e.se_retracts)
        entries
  | Seq { inner; _ } -> intern_values inner
  | Update_request _ | Update_link_closed _ | Update_ack _ | Update_terminated _
  | Query_done _ | Rules_file _ | Start_update | Stats_request | Stats_response _
  | Discovery_probe _ | Discovery_reply _ | Seq_ack _ | Sub_register _
  | Sub_registered _ | Sub_unregister _ ->
      ()

let rec is_update_protocol = function
  | Update_request _ | Update_data _ | Update_batch _ | Update_link_closed _ -> true
  | Update_ack _ | Update_terminated _ | Query_request _ | Query_data _ | Query_done _
  | Rules_file _ | Start_update | Stats_request | Stats_response _ | Discovery_probe _
  | Discovery_reply _ | Seq_ack _ | Sub_register _ | Sub_registered _
  | Sub_unregister _ | Answer_delta _ | Answer_batch _ ->
      false
  | Seq { inner; _ } -> is_update_protocol inner

let rec describe = function
  | Update_request { update_id; scope = Global } ->
      "update-request " ^ Ids.string_of_update update_id
  | Update_request { update_id; scope = For_rule rule } ->
      Printf.sprintf "update-request %s for %s" (Ids.string_of_update update_id) rule
  | Update_data { rule_id; tuples; _ } ->
      Printf.sprintf "update-data %s (%d tuples)" rule_id (List.length tuples)
  | Update_batch { entries; _ } ->
      Printf.sprintf "update-batch (%d rules, %d tuples)" (List.length entries)
        (List.fold_left (fun acc e -> acc + List.length e.be_tuples) 0 entries)
  | Update_link_closed { rule_id; _ } -> "link-closed " ^ rule_id
  | Update_ack _ -> "ack"
  | Update_terminated _ -> "terminated"
  | Query_request { rule_id; constraints; _ } ->
      if Specialize.is_any constraints then "query-request " ^ rule_id
      else
        Printf.sprintf "query-request %s [%d preds]" rule_id
          (Specialize.pred_count constraints)
  | Query_data { rule_id; tuples; _ } ->
      Printf.sprintf "query-data %s (%d tuples)" rule_id (List.length tuples)
  | Query_done { rule_id; _ } -> "query-done " ^ rule_id
  | Rules_file { version; _ } -> Printf.sprintf "rules-file v%d" version
  | Start_update -> "start-update"
  | Stats_request -> "stats-request"
  | Stats_response _ -> "stats-response"
  | Discovery_probe { ttl; _ } -> Printf.sprintf "discovery-probe ttl=%d" ttl
  | Discovery_reply { peers; _ } ->
      Printf.sprintf "discovery-reply (%d peers)" (List.length peers)
  | Seq { seq; inner } -> Printf.sprintf "seq#%d %s" seq (describe inner)
  | Seq_ack { seq } -> Printf.sprintf "seq-ack#%d" seq
  | Sub_register { sub_id; _ } -> "sub-register " ^ sub_id
  | Sub_registered { sub_id; accepted = true; _ } -> "sub-registered " ^ sub_id
  | Sub_registered { sub_id; accepted = false; _ } -> "sub-refused " ^ sub_id
  | Sub_unregister { sub_id } -> "sub-unregister " ^ sub_id
  | Answer_delta { sub_id; adds; retracts; _ } ->
      Printf.sprintf "answer-delta %s (+%d -%d)" sub_id (List.length adds)
        (List.length retracts)
  | Answer_batch { entries } ->
      Printf.sprintf "answer-batch (%d subs, %d tuples)" (List.length entries)
        (List.fold_left
           (fun acc e ->
             acc + List.length e.se_adds + List.length e.se_retracts)
           0 entries)

(* ---- Compact binary wire format ------------------------------------- *)
(* One tag byte per payload, then fields through Codb_net.Codec: counts and
   lengths as unsigned varints, every other integer zigzag-encoded, strings
   through the per-message dictionary (rule ids, peer names, null provenance
   tags and skewed data strings all repeat heavily within one message).
   [Stats_response] carries an in-memory snapshot record that never crosses
   the measured update path, so it is deliberately not encodable; its size
   keeps using the estimator. *)

let tag_of = function
  | Update_request { scope = Global; _ } -> 0
  | Update_request { scope = For_rule _; _ } -> 1
  | Update_data _ -> 2
  | Update_batch _ -> 3
  | Update_link_closed _ -> 4
  | Update_ack _ -> 5
  | Update_terminated _ -> 6
  | Query_request _ -> 7
  | Query_data _ -> 8
  | Query_done _ -> 9
  | Rules_file _ -> 10
  | Start_update -> 11
  | Stats_request -> 12
  | Stats_response _ -> 13
  | Discovery_probe _ -> 14
  | Discovery_reply _ -> 15
  | Seq _ -> 16
  | Seq_ack _ -> 17
  | Sub_register _ -> 18
  | Sub_registered _ -> 19
  | Sub_unregister _ -> 20
  | Answer_delta _ -> 21
  | Answer_batch _ -> 22

let put_value w = function
  | Value.Int n ->
      Codec.byte w 0;
      Codec.zigzag w n
  | Value.Float f ->
      Codec.byte w 1;
      Codec.float64 w f
  | Value.Str s ->
      Codec.byte w 2;
      Codec.string w s
  | Value.Bool false -> Codec.byte w 3
  | Value.Bool true -> Codec.byte w 4
  | Value.Null { Value.null_id; null_rule } ->
      Codec.byte w 5;
      Codec.zigzag w null_id;
      Codec.string w null_rule
  | Value.Hole i ->
      Codec.byte w 6;
      Codec.zigzag w i

let get_value r =
  match Codec.read_byte r with
  | 0 -> Value.Int (Codec.read_zigzag r)
  | 1 -> Value.Float (Codec.read_float64 r)
  | 2 -> Value.Str (Codec.read_string r)
  | 3 -> Value.Bool false
  | 4 -> Value.Bool true
  | 5 ->
      let null_id = Codec.read_zigzag r in
      let null_rule = Codec.read_string r in
      Value.Null { Value.null_id; null_rule }
  | 6 -> Value.Hole (Codec.read_zigzag r)
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown value tag %d" n))

let put_tuple w (t : Tuple.t) =
  Codec.varint w (Array.length t);
  Array.iter (put_value w) t

let get_tuple r =
  let arity = Codec.read_count r in
  Array.init arity (fun _ -> get_value r)

let put_tuples w tuples =
  Codec.varint w (List.length tuples);
  List.iter (put_tuple w) tuples

let get_tuples r = List.init (Codec.read_count r) (fun _ -> get_tuple r)

let put_update_id w (u : Ids.update_id) =
  Codec.string w (Peer_id.to_string u.Ids.u_origin);
  Codec.zigzag w u.Ids.u_serial

(* A flipped bit can turn a peer name into the empty string, which
   [Peer_id.of_string] rejects with [Invalid_argument]; decoders must
   fail with [Malformed] only. *)
let get_peer r =
  match Codec.read_string r with
  | "" -> raise (Codec.Malformed "empty peer name")
  | s -> Peer_id.of_string s

let get_update_id r =
  let origin = get_peer r in
  Ids.update_id origin (Codec.read_zigzag r)

let put_query_id w (q : Ids.query_id) =
  Codec.string w (Peer_id.to_string q.Ids.q_origin);
  Codec.zigzag w q.Ids.q_serial

let get_query_id r =
  let origin = get_peer r in
  Ids.query_id origin (Codec.read_zigzag r)

let put_peers w peers =
  Codec.varint w (List.length peers);
  List.iter (fun p -> Codec.string w (Peer_id.to_string p)) peers

let get_peers r = List.init (Codec.read_count r) (fun _ -> get_peer r)

let op_tag = function
  | Codb_cq.Query.Eq -> 0
  | Codb_cq.Query.Neq -> 1
  | Codb_cq.Query.Lt -> 2
  | Codb_cq.Query.Le -> 3
  | Codb_cq.Query.Gt -> 4
  | Codb_cq.Query.Ge -> 5

let op_of_tag = function
  | 0 -> Codb_cq.Query.Eq
  | 1 -> Codb_cq.Query.Neq
  | 2 -> Codb_cq.Query.Lt
  | 3 -> Codb_cq.Query.Le
  | 4 -> Codb_cq.Query.Gt
  | 5 -> Codb_cq.Query.Ge
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown comparison tag %d" n))

let put_operand w = function
  | Specialize.Col i ->
      Codec.byte w 0;
      Codec.varint w i
  | Specialize.Const v ->
      Codec.byte w 1;
      put_value w v

let get_operand r =
  match Codec.read_byte r with
  | 0 -> Specialize.Col (Codec.read_varint r)
  | 1 -> Specialize.Const (get_value r)
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown operand tag %d" n))

let put_constraints w = function
  | Specialize.Any -> Codec.byte w 0
  | Specialize.One_of alts ->
      Codec.byte w 1;
      Codec.varint w (List.length alts);
      List.iter
        (fun conj ->
          Codec.varint w (List.length conj);
          List.iter
            (fun { Specialize.p_left; p_op; p_right } ->
              Codec.byte w (op_tag p_op);
              put_operand w p_left;
              put_operand w p_right)
            conj)
        alts

let get_constraints r =
  match Codec.read_byte r with
  | 0 -> Specialize.Any
  | 1 ->
      Specialize.One_of
        (List.init (Codec.read_count r) (fun _ ->
             List.init (Codec.read_count r) (fun _ ->
                 let p_op = op_of_tag (Codec.read_byte r) in
                 let p_left = get_operand r in
                 let p_right = get_operand r in
                 { Specialize.p_left; p_op; p_right })))
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown constraint tag %d" n))

let put_bool w b = Codec.byte w (if b then 1 else 0)

let get_bool r =
  match Codec.read_byte r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Codec.Malformed (Printf.sprintf "bad bool byte %d" n))

let rec put_payload w payload =
  Codec.byte w (tag_of payload);
  match payload with
  | Update_request { update_id; scope = Global } -> put_update_id w update_id
  | Update_request { update_id; scope = For_rule rule } ->
      put_update_id w update_id;
      Codec.string w rule
  | Update_data { update_id; rule_id; tuples; hops; global } ->
      put_update_id w update_id;
      Codec.string w rule_id;
      Codec.zigzag w hops;
      put_bool w global;
      put_tuples w tuples
  | Update_batch { update_id; entries; global } ->
      put_update_id w update_id;
      put_bool w global;
      Codec.varint w (List.length entries);
      List.iter
        (fun { be_rule; be_hops; be_tuples } ->
          Codec.string w be_rule;
          Codec.zigzag w be_hops;
          put_tuples w be_tuples)
        entries
  | Update_link_closed { update_id; rule_id; global } ->
      put_update_id w update_id;
      Codec.string w rule_id;
      put_bool w global
  | Update_ack { update_id } -> put_update_id w update_id
  | Update_terminated { update_id } -> put_update_id w update_id
  | Query_request { query_id; request_ref; rule_id; label; constraints } ->
      put_query_id w query_id;
      Codec.string w request_ref;
      Codec.string w rule_id;
      put_peers w label;
      put_constraints w constraints
  | Query_data { query_id; request_ref; rule_id; tuples } ->
      put_query_id w query_id;
      Codec.string w request_ref;
      Codec.string w rule_id;
      put_tuples w tuples
  | Query_done { query_id; request_ref; rule_id; complete } ->
      put_query_id w query_id;
      Codec.string w request_ref;
      Codec.string w rule_id;
      put_bool w complete
  | Rules_file { version; text } ->
      Codec.zigzag w version;
      Codec.raw_string w text
  | Start_update | Stats_request -> ()
  | Stats_response _ ->
      invalid_arg "Payload.encode: Stats_response is not wire-encodable"
  | Discovery_probe { probe_id; ttl; path } ->
      Codec.string w probe_id;
      Codec.zigzag w ttl;
      put_peers w path
  | Discovery_reply { probe_id; path; peers } ->
      Codec.string w probe_id;
      put_peers w path;
      put_peers w peers
  | Seq { seq; inner } ->
      Codec.varint w seq;
      (* recursive: the wrapped frame shares the message's string
         dictionary with its payload *)
      put_payload w inner
  | Seq_ack { seq } -> Codec.varint w seq
  | Sub_register { sub_id; query_text } ->
      Codec.string w sub_id;
      Codec.raw_string w query_text
  | Sub_registered { sub_id; accepted; reason } ->
      Codec.string w sub_id;
      put_bool w accepted;
      Codec.raw_string w reason
  | Sub_unregister { sub_id } -> Codec.string w sub_id
  | Answer_delta { sub_id; adds; retracts; tag } ->
      Codec.string w sub_id;
      Codec.string w tag;
      put_tuples w adds;
      put_tuples w retracts
  | Answer_batch { entries } ->
      Codec.varint w (List.length entries);
      List.iter
        (fun { se_sub; se_adds; se_retracts; se_tag } ->
          Codec.string w se_sub;
          Codec.string w se_tag;
          put_tuples w se_adds;
          put_tuples w se_retracts)
        entries

let encode ?link payload =
  match link with
  | None ->
      let w = Codec.writer () in
      put_payload w payload;
      Codec.contents w
  | Some d ->
      (* Link frame: varint epoch stamp, then the body with strings in
         [Linked] mode against the per-link dictionary.  The epoch lets
         the receiver pick the decode table ({!Codec.Dict.table_for})
         and makes desync detectable instead of silent. *)
      let w = Codec.writer ~mode:(Codec.Linked d) () in
      Codec.varint w (Codec.Dict.epoch d);
      put_payload w payload;
      Codec.contents w

let rec get_payload r =
  match Codec.read_byte r with
  | 0 ->
      let update_id = get_update_id r in
      Update_request { update_id; scope = Global }
  | 1 ->
      let update_id = get_update_id r in
      Update_request { update_id; scope = For_rule (Codec.read_string r) }
  | 2 ->
      let update_id = get_update_id r in
      let rule_id = Codec.read_string r in
      let hops = Codec.read_zigzag r in
      let global = get_bool r in
      let tuples = get_tuples r in
      Update_data { update_id; rule_id; tuples; hops; global }
  | 3 ->
      let update_id = get_update_id r in
      let global = get_bool r in
      let entries =
        List.init (Codec.read_count r) (fun _ ->
            let be_rule = Codec.read_string r in
            let be_hops = Codec.read_zigzag r in
            let be_tuples = get_tuples r in
            { be_rule; be_hops; be_tuples })
      in
      Update_batch { update_id; entries; global }
  | 4 ->
      let update_id = get_update_id r in
      let rule_id = Codec.read_string r in
      let global = get_bool r in
      Update_link_closed { update_id; rule_id; global }
  | 5 -> Update_ack { update_id = get_update_id r }
  | 6 -> Update_terminated { update_id = get_update_id r }
  | 7 ->
      let query_id = get_query_id r in
      let request_ref = Codec.read_string r in
      let rule_id = Codec.read_string r in
      let label = get_peers r in
      let constraints = get_constraints r in
      Query_request { query_id; request_ref; rule_id; label; constraints }
  | 8 ->
      let query_id = get_query_id r in
      let request_ref = Codec.read_string r in
      let rule_id = Codec.read_string r in
      let tuples = get_tuples r in
      Query_data { query_id; request_ref; rule_id; tuples }
  | 9 ->
      let query_id = get_query_id r in
      let request_ref = Codec.read_string r in
      let rule_id = Codec.read_string r in
      let complete = get_bool r in
      Query_done { query_id; request_ref; rule_id; complete }
  | 10 ->
      let version = Codec.read_zigzag r in
      Rules_file { version; text = Codec.read_raw_string r }
  | 11 -> Start_update
  | 12 -> Stats_request
  | 13 -> raise (Codec.Malformed "Stats_response is not wire-encodable")
  | 14 ->
      let probe_id = Codec.read_string r in
      let ttl = Codec.read_zigzag r in
      let path = get_peers r in
      Discovery_probe { probe_id; ttl; path }
  | 15 ->
      let probe_id = Codec.read_string r in
      let path = get_peers r in
      let peers = get_peers r in
      Discovery_reply { probe_id; path; peers }
  | 16 ->
      let seq = Codec.read_varint r in
      Seq { seq; inner = get_payload r }
  | 17 -> Seq_ack { seq = Codec.read_varint r }
  | 18 ->
      let sub_id = Codec.read_string r in
      Sub_register { sub_id; query_text = Codec.read_raw_string r }
  | 19 ->
      let sub_id = Codec.read_string r in
      let accepted = get_bool r in
      Sub_registered { sub_id; accepted; reason = Codec.read_raw_string r }
  | 20 -> Sub_unregister { sub_id = Codec.read_string r }
  | 21 ->
      let sub_id = Codec.read_string r in
      let tag = Codec.read_string r in
      let adds = get_tuples r in
      let retracts = get_tuples r in
      Answer_delta { sub_id; adds; retracts; tag }
  | 22 ->
      let entries =
        List.init (Codec.read_count r) (fun _ ->
            let se_sub = Codec.read_string r in
            let se_tag = Codec.read_string r in
            let se_adds = get_tuples r in
            let se_retracts = get_tuples r in
            { se_sub; se_adds; se_retracts; se_tag })
      in
      Answer_batch { entries }
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown payload tag %d" n))

let decode ?link bytes =
  try
    let r =
      match link with
      | None -> Codec.reader bytes
      | Some rc ->
          (* Read the epoch stamp with a throwaway reader, then decode
             the body against the table that epoch selects. *)
          let r0 = Codec.reader bytes in
          let epoch = Codec.read_varint r0 in
          let tab = Codec.Dict.table_for rc ~epoch in
          let body_at = String.length bytes - Codec.remaining r0 in
          Codec.reader ~mode:(Codec.R_linked tab)
            (String.sub bytes body_at (String.length bytes - body_at))
    in
    let payload = get_payload r in
    if Codec.at_end r then Ok payload
    else Error "Payload.decode: trailing bytes"
  with Codec.Malformed why -> Error ("Payload.decode: " ^ why)

let encode_tuples tuples =
  let w = Codec.writer () in
  put_tuples w tuples;
  Codec.contents w

let decode_tuples bytes =
  let r = Codec.reader bytes in
  try
    let tuples = get_tuples r in
    if Codec.at_end r then Ok tuples else Error "Payload.decode_tuples: trailing bytes"
  with Codec.Malformed why -> Error ("Payload.decode_tuples: " ^ why)

let encoded_size ?link payload =
  match payload with
  | Stats_response { stats } ->
      (* never wire-encoded; the estimator stands in (and a link frame
         would only add the 1-byte epoch stamp it already ignores) *)
      1 + Stats.snapshot_size_bytes stats
  | payload -> String.length (encode ?link payload)
