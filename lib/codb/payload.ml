module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple

type update_scope = Global | For_rule of string

type t =
  | Update_request of { update_id : Ids.update_id; scope : update_scope }
  | Update_data of {
      update_id : Ids.update_id;
      rule_id : string;
      tuples : Tuple.t list;
      hops : int;
      global : bool;
    }
  | Update_link_closed of { update_id : Ids.update_id; rule_id : string; global : bool }
  | Update_ack of { update_id : Ids.update_id }
  | Update_terminated of { update_id : Ids.update_id }
  | Query_request of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      label : Peer_id.t list;
    }
  | Query_data of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      tuples : Tuple.t list;
    }
  | Query_done of { query_id : Ids.query_id; request_ref : string; rule_id : string }
  | Rules_file of { version : int; text : string }
  | Start_update
  | Stats_request
  | Stats_response of { stats : Stats.snapshot }
  | Discovery_probe of { probe_id : string; ttl : int; path : Peer_id.t list }
  | Discovery_reply of { probe_id : string; path : Peer_id.t list; peers : Peer_id.t list }

let tuples_bytes tuples = List.fold_left (fun acc t -> acc + Tuple.size_bytes t) 0 tuples

let peers_bytes peers =
  List.fold_left (fun acc p -> acc + 4 + String.length (Peer_id.to_string p)) 0 peers

let size = function
  | Update_request { scope = Global; _ } -> 24
  | Update_request { scope = For_rule rule; _ } -> 24 + String.length rule
  | Update_data { tuples; _ } -> 32 + tuples_bytes tuples
  | Update_link_closed _ -> 28
  | Update_ack _ -> 20
  | Update_terminated _ -> 20
  | Query_request { label; request_ref; _ } ->
      40 + String.length request_ref + peers_bytes label
  | Query_data { tuples; request_ref; _ } ->
      32 + String.length request_ref + tuples_bytes tuples
  | Query_done { request_ref; _ } -> 24 + String.length request_ref
  | Rules_file { text; _ } -> 16 + String.length text
  | Start_update -> 8
  | Stats_request -> 8
  | Stats_response { stats } -> Stats.snapshot_size_bytes stats
  | Discovery_probe { path; probe_id; _ } -> 16 + String.length probe_id + peers_bytes path
  | Discovery_reply { path; peers; probe_id } ->
      16 + String.length probe_id + peers_bytes path + peers_bytes peers

let is_update_protocol = function
  | Update_request _ | Update_data _ | Update_link_closed _ -> true
  | Update_ack _ | Update_terminated _ | Query_request _ | Query_data _ | Query_done _
  | Rules_file _ | Start_update | Stats_request | Stats_response _ | Discovery_probe _
  | Discovery_reply _ ->
      false

let describe = function
  | Update_request { update_id; scope = Global } ->
      "update-request " ^ Ids.string_of_update update_id
  | Update_request { update_id; scope = For_rule rule } ->
      Printf.sprintf "update-request %s for %s" (Ids.string_of_update update_id) rule
  | Update_data { rule_id; tuples; _ } ->
      Printf.sprintf "update-data %s (%d tuples)" rule_id (List.length tuples)
  | Update_link_closed { rule_id; _ } -> "link-closed " ^ rule_id
  | Update_ack _ -> "ack"
  | Update_terminated _ -> "terminated"
  | Query_request { rule_id; _ } -> "query-request " ^ rule_id
  | Query_data { rule_id; tuples; _ } ->
      Printf.sprintf "query-data %s (%d tuples)" rule_id (List.length tuples)
  | Query_done { rule_id; _ } -> "query-done " ^ rule_id
  | Rules_file { version; _ } -> Printf.sprintf "rules-file v%d" version
  | Start_update -> "start-update"
  | Stats_request -> "stats-request"
  | Stats_response _ -> "stats-response"
  | Discovery_probe { ttl; _ } -> Printf.sprintf "discovery-probe ttl=%d" ttl
  | Discovery_reply { peers; _ } ->
      Printf.sprintf "discovery-reply (%d peers)" (List.length peers)
