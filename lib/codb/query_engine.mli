(** Query-time answering (paper Sections 1 and 3).

    A node queried in its own schema fetches the relevant data from
    its neighbours at query time: the query request diffuses through
    the outgoing links whose heads mention relations of the query,
    each request labelled with the sequence of node ids it passed
    through, and never forwarded to a node already on the label — so
    requests travel exactly the simple paths out of the query node.
    Results stream back hop by hop: each intermediate node integrates
    incoming tuples into a {e query-scoped overlay} (its Local
    Database is not modified — materialisation is the update
    algorithm's job), re-evaluates the served rule semi-naively, and
    forwards only what it has not sent before.  Completion is signalled
    bottom-up with [Query_done] messages.

    On networks whose rule-dependency graph is acyclic this computes
    the same certain answers as querying after a global update — a
    property the test suite checks; on cyclic networks the simple-path
    restriction may miss data that only a fix-point provides, which is
    exactly why the paper has the update algorithm. *)

module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple

val start :
  ?on_answer:(Tuple.t list -> unit) ->
  Runtime.t ->
  Ids.query_id ->
  Codb_cq.Query.t ->
  string
(** Pose a user query at this node; returns the root instance
    reference to pass to {!result} once the network is quiescent.
    [on_answer] streams each batch of new answers as it becomes
    derivable — first from local data, then as remote results arrive
    (the paper UI's "browse streaming results").
    @raise Invalid_argument if the query is ill-formed (existential
    head, unsafe comparison) or mentions relations outside the node's
    schema. *)

val handle : Runtime.t -> src:Peer_id.t -> bytes:int -> Payload.t -> unit
(** Process one [Query_*] message; others are ignored. *)

val result : Node.t -> string -> Tuple.t list option
(** The answers of a completed root instance ([None] while the
    diffusion is still running). *)
