(** The message vocabulary of the coDB protocol.

    Everything the paper's nodes exchange: global-update requests,
    query results ("update data"), link-closing notifications,
    termination-detection acknowledgements, query-time requests and
    streaming results, the super-peer's rules file and statistics
    collection, and JXTA-style peer discovery. *)

module Peer_id = Codb_net.Peer_id
module Codec = Codb_net.Codec
module Tuple = Codb_relalg.Tuple
module Specialize = Codb_cq.Specialize

type batch_entry = {
  be_rule : string;  (** coordination rule the tuples belong to *)
  be_hops : int;  (** max propagation-path length among the coalesced firings *)
  be_tuples : Tuple.t list;
}

type sub_entry = {
  se_sub : string;  (** subscription id the delta belongs to *)
  se_adds : Tuple.t list;
  se_retracts : Tuple.t list;
  se_tag : string;  (** provenance of the store change (see [Answer_delta]) *)
}

type update_scope =
  | Global
      (** a full global update: flooded to every acquaintance, every
          link served *)
  | For_rule of string
      (** a query-dependent update (the paper's "query-dependent
          update requests"): the sender asks the receiver to serve
          exactly this coordination rule; the receiver recursively
          requests what that rule's body needs *)

type t =
  | Update_request of { update_id : Ids.update_id; scope : update_scope }
      (** propagate an update through the network; stopped at nodes
          that have already seen [update_id] (globals) or already
          serve the rule (scoped) *)
  | Update_data of {
      update_id : Ids.update_id;
      rule_id : string;
      tuples : Tuple.t list;
          (** head tuples, existential positions as holes *)
      hops : int;  (** length of the update propagation path so far *)
      global : bool;
          (** lets a node first contacted by data (races with the
              request flood) know which protocol variant it joined *)
    }
  | Update_batch of {
      update_id : Ids.update_id;
      entries : batch_entry list;
          (** one entry per rule whose firings were coalesced within the
              sender's flush window; semantically equivalent to sending
              each entry as a separate [Update_data] *)
      global : bool;
    }
  | Update_link_closed of { update_id : Ids.update_id; rule_id : string; global : bool }
      (** the source of [rule_id] will send no more data on it *)
  | Update_ack of { update_id : Ids.update_id }
      (** Dijkstra–Scholten acknowledgement *)
  | Update_terminated of { update_id : Ids.update_id }
      (** flooded by the initiator once global quiescence is detected;
          closes the links of cyclic components *)
  | Query_request of {
      query_id : Ids.query_id;
      request_ref : string;  (** unique handle echoed by the responses *)
      rule_id : string;  (** the requester's outgoing link to execute *)
      label : Peer_id.t list;  (** nodes already on the path *)
      constraints : Specialize.t;
          (** relevance bound pushed down from the requester: the
              responder may drop head tuples that cannot match, and
              folds the constraint into its own evaluation and
              fan-out ({!Codb_cq.Specialize}); [Any] when pushdown is
              off *)
    }
  | Query_data of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      tuples : Tuple.t list;
    }
  | Query_done of {
      query_id : Ids.query_id;
      request_ref : string;
      rule_id : string;
      complete : bool;
          (** [false] when the responder's sub-tree lost children or
              data to faults: the answers upstream are a lower bound *)
    }
  | Rules_file of { version : int; text : string }
      (** the super-peer's broadcast coordination-rules file *)
  | Start_update
      (** super-peer control: begin a global update at the receiver *)
  | Stats_request
  | Stats_response of { stats : Stats.snapshot }
  | Discovery_probe of {
      probe_id : string;
      ttl : int;
      path : Peer_id.t list;  (** route back to the origin *)
    }
  | Discovery_reply of {
      probe_id : string;
      path : Peer_id.t list;  (** remaining route back *)
      peers : Peer_id.t list;
    }
  | Seq of { seq : int; inner : t }
      (** reliable-transport frame ({!Reliable}): [seq] is unique per
          sender, the receiver acknowledges and deduplicates *)
  | Seq_ack of { seq : int }
      (** transport acknowledgement; raw (never itself sequenced or
          retried — the sender's retransmission covers a lost ack) *)
  | Sub_register of {
      sub_id : string;
      query_text : string;
          (** the standing query in concrete syntax
              ({!Codb_cq.Pretty.query} / {!Codb_cq.Parser}); re-sent
              verbatim when a subscriber re-arms after the host
              restarts *)
    }
  | Sub_registered of { sub_id : string; accepted : bool; reason : string }
      (** host's verdict; [reason] is non-empty exactly when refused
          (parse failure, malformed query, [max_subscriptions]) *)
  | Sub_unregister of { sub_id : string }
  | Answer_delta of {
      sub_id : string;
      adds : Tuple.t list;
      retracts : Tuple.t list;
      tag : string;
          (** lineage-derived provenance: which update/rule/hop (or
              local write, seed, re-arm snapshot) produced the store
              change this answer delta reflects *)
    }
  | Answer_batch of { entries : sub_entry list }
      (** coalesced deltas for several subscriptions of one
          subscriber, flushed together at the end of a
          [sub_batch_window] (the update protocol's [Update_batch]
          move applied to answer push) *)

val size : t -> int
(** Estimated payload wire size in bytes (the pre-codec heuristic, kept
    as the [wire_codec = false] ablation baseline). *)

val encode : ?link:Codec.Dict.sender -> t -> string
(** Compact binary encoding: tag byte, varint-prefixed fields, zigzag
    integers, per-message string dictionary.  With [link], the message
    becomes a link frame instead: a varint epoch stamp followed by the
    body with strings in {!Codec.strmode.Linked} mode, so strings the
    link has already carried this epoch ship as back-references.
    Encoding trains the sender dictionary.  Raises [Invalid_argument]
    on [Stats_response], whose snapshot record never crosses the
    measured wire path. *)

val decode : ?link:Codec.Dict.receiver -> string -> (t, string) result
(** Inverse of {!encode}; [Error] on truncated or corrupt input.
    [link] must be given exactly when the bytes are a link frame: the
    epoch stamp selects the decode table ({!Codec.Dict.table_for}), and
    a back-reference the receiver never saw introduced fails as
    [Error] — never a wrong string. *)

val encoded_size : ?link:Codec.Dict.sender -> t -> int
(** Actual encoded byte count, [String.length (encode ?link p)]; falls
    back to the estimator for [Stats_response]. *)

val encode_tuples : Tuple.t list -> string
(** Encode a bare tuple list (exposed for codec round-trip tests). *)

val decode_tuples : string -> (Tuple.t list, string) result

val put_value : Codec.writer -> Codb_relalg.Value.t -> unit
(** Writer-level primitives, shared with the durability layer
    ({!Durable}): WAL records and snapshots reuse the wire encoding of
    values and tuples as their on-disk format. *)

val get_value : Codec.reader -> Codb_relalg.Value.t
(** @raise Codec.Malformed on corrupt input. *)

val put_tuple : Codec.writer -> Tuple.t -> unit
val get_tuple : Codec.reader -> Tuple.t
val put_tuples : Codec.writer -> Tuple.t list -> unit
val get_tuples : Codec.reader -> Tuple.t list

val is_update_protocol : t -> bool
(** Messages that take part in Dijkstra–Scholten termination
    accounting (requests, data, link-closed — not acks, not the
    terminated flood).  A [Seq] frame classifies as its payload. *)

val parallel_safe : t -> bool
(** May handling this payload run inside a fanned-out parallel batch
    (see [System])?  [true] only for node-local handlers that mint no
    value identities: data and protocol-bookkeeping messages whose
    tuples carry no holes (hole instantiation draws from the global
    null counter).  Control traffic — rules installation, discovery,
    subscription registration, stats — answers [false] and runs
    sequentially.  A misclassification cannot corrupt a run:
    {!Codb_relalg.Value.freeze_minting} makes any minting inside a
    batch raise instead of race. *)

val intern_values : t -> unit
(** Pre-intern every value the payload carries (tuples and pushdown
    constraint constants) into the global {!Codb_relalg.Intern} table.
    The parallel driver calls this sequentially, in delivery order,
    before fanning a batch out, so slot assignment stays
    insertion-ordered and handler-side packing under the minting
    freeze is a read-only hit. *)

val describe : t -> string
