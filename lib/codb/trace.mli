(** Protocol event tracing.

    A bounded ring buffer of message-level events (sends and
    deliveries with simulated timestamps), attachable to a running
    {!System} for debugging and for teaching: a trace of a small
    update run reads as a step-by-step execution of the paper's
    algorithm. *)

module Peer_id = Codb_net.Peer_id

type direction = Sent | Delivered

type event = {
  ev_at : float;  (** simulated time *)
  ev_direction : direction;
  ev_src : Peer_id.t;
  ev_dst : Peer_id.t;
  ev_what : string;  (** {!Payload.describe} of the payload *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events; older events are overwritten. *)

val record : t -> event -> unit

val events : t -> event list
(** Oldest first (up to the capacity). *)

val length : t -> int

val dropped : t -> int
(** Events overwritten because the buffer was full. *)

val clear : t -> unit

val pp_event : event Fmt.t

val pp : t Fmt.t
