module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value
module Database = Codb_relalg.Database
module Relation = Codb_relalg.Relation
module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Eval = Codb_cq.Eval
module Apply = Codb_cq.Apply

type integration = {
  fresh : Tuple.t list;
  suppressed : int;
  nulls_created : int;
}

(* Evaluation entry points thread the planner switch and index budget
   from [Options]; the default matches [Options.default]. *)
let eval_source (opts : Options.t) db =
  Eval.of_database ~index_budget:opts.Options.index_budget db

let eval_query_full ?(opts = Options.default) db query =
  let substs =
    Eval.answers ~planner:opts.Options.planner
      ~zone_maps:opts.Options.zone_maps (eval_source opts db) query
  in
  Apply.head_tuples query substs

let eval_query_delta ?(opts = Options.default) ~naive db query ~delta_rel ~delta =
  let substs =
    Eval.delta_answers ~naive ~planner:opts.Options.planner
      ~zone_maps:opts.Options.zone_maps (eval_source opts db) ~delta_rel ~delta
      query
  in
  Apply.head_tuples query substs

let eval_rule_full ?opts db (rule : Config.rule_decl) =
  eval_query_full ?opts db rule.Config.rule_query

let eval_rule_delta ?opts ~naive db (rule : Config.rule_decl) ~delta_rel ~delta =
  eval_query_delta ?opts ~naive db rule.Config.rule_query ~delta_rel ~delta

let integrate ~(opts : Options.t) ~rule_id db ~rel tuples =
  let relation = Database.relation db rel in
  let is_duplicate t =
    if opts.Options.use_subsumption_dedup then Relation.subsumed relation t
    else (not (Tuple.has_hole t)) && Relation.mem relation t
  in
  let incoming_fresh = List.filter (fun t -> not (is_duplicate t)) tuples in
  let suppressed = List.length tuples - List.length incoming_fresh in
  let nulls_before = Value.null_counter () in
  let instantiated = Apply.instantiate ~rule:rule_id incoming_fresh in
  let nulls_created = Value.null_counter () - nulls_before in
  let fresh = Database.insert_all db rel instantiated in
  let suppressed = suppressed + (List.length instantiated - List.length fresh) in
  { fresh; suppressed; nulls_created }

let user_answers ?(opts = Options.default) db q =
  Eval.answer_tuples ~planner:opts.Options.planner
    ~zone_maps:opts.Options.zone_maps (eval_source opts db) q
