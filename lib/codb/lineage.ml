module Tuple = Codb_relalg.Tuple
module Database = Codb_relalg.Database
module Relation = Codb_relalg.Relation

type import = { li_rule : string; li_hops : int; li_at : float }

type origin = Base | Imported of import list

type key = string * Tuple.t

module Key_map = Map.Make (struct
  type t = key

  let compare (r1, t1) (r2, t2) =
    let c = String.compare r1 r2 in
    if c <> 0 then c else Tuple.compare t1 t2
end)

type t = { mutable entries : import list Key_map.t }

let create () = { entries = Key_map.empty }

let record_import t ~rel tuple import =
  let key = (rel, tuple) in
  let existing = Option.value ~default:[] (Key_map.find_opt key t.entries) in
  t.entries <- Key_map.add key (existing @ [ import ]) t.entries

let imports t ~rel tuple =
  Option.value ~default:[] (Key_map.find_opt (rel, tuple) t.entries)

let all t = Key_map.bindings t.entries

let clear t = t.entries <- Key_map.empty

let origin_of ~store t ~rel tuple =
  match Database.relation_opt store rel with
  | None -> None
  | Some relation ->
      if not (Relation.mem relation tuple) then None
      else begin
        match imports t ~rel tuple with
        | [] -> Some Base
        | routes -> Some (Imported routes)
      end

let pp_import ppf i =
  Fmt.pf ppf "via rule %s, %d hop(s), at %.4fs" i.li_rule i.li_hops i.li_at

let pp_origin ppf = function
  | Base -> Fmt.string ppf "base fact (local)"
  | Imported routes -> Fmt.(list ~sep:(any "; ") pp_import) ppf routes
