module Peer_id = Codb_net.Peer_id
module Config = Codb_cq.Config
module Database = Codb_relalg.Database
module Eval = Codb_cq.Eval

type t = {
  node_id : Peer_id.t;
  mutable decl : Config.node_decl;
  mutable store : Database.t;
  mutable outgoing : Config.rule_decl list;
  mutable incoming : Config.rule_decl list;
  stats : Stats.t;
  lineage : Lineage.t;
  updates : (string, Update_state.t) Hashtbl.t;
  query_instances : (string, Query_state.t) Hashtbl.t;
  sub_refs : (string, string) Hashtbl.t;
  mutable serial : int;
  mutable rules_version : int;
  mutable known_peers : Peer_id.Set.t;
  seen_probes : (string, unit) Hashtbl.t;
  mutable cache : Codb_cache.Qcache.t option;
  mutable relay : Relay.t option;
  mutable subs : Codb_sub.Registry.t option;
  sub_mirrors : (string, Codb_sub.Mirror.t) Hashtbl.t;
  sub_outbox : Codb_sub.Outbox.t;
  mutable wal : Codb_store.Wal.t option;
  mutable wal_dict : Codb_net.Codec.Dict.sender option;
  mutable wal_reserved : int;
  mutable recovered_sent : (string * string * Codb_relalg.Tuple.t list) list;
  mutable track_refetch : bool;
}

let create decl =
  let store = Database.create decl.Config.relations in
  List.iter
    (fun (rel, tuple) -> ignore (Database.insert store rel tuple))
    decl.Config.facts;
  let node_id = Peer_id.of_string decl.Config.node_name in
  (* denial constraints are evaluated inside update/query handlers,
     which the parallel runtime may run under the minting freeze *)
  List.iter Codb_cq.Query.intern_constants decl.Config.constraints;
  {
    node_id;
    decl;
    store;
    outgoing = [];
    incoming = [];
    stats = Stats.create node_id;
    lineage = Lineage.create ();
    updates = Hashtbl.create 8;
    query_instances = Hashtbl.create 8;
    sub_refs = Hashtbl.create 8;
    serial = 0;
    rules_version = 0;
    known_peers = Peer_id.Set.empty;
    seen_probes = Hashtbl.create 8;
    cache = None;
    relay = None;
    subs = None;
    sub_mirrors = Hashtbl.create 4;
    sub_outbox = Codb_sub.Outbox.create ();
    wal = None;
    wal_dict = None;
    wal_reserved = 0;
    recovered_sent = [];
    track_refetch = false;
  }

(* An honest crash ([Options.durability <> Dur_off]) destroys the store
   too: rebuild it from the node's declaration, exactly as [create]
   does, and forget the lineage of the tuples that died with it. *)
let reset_store node =
  let store = Database.create node.decl.Config.relations in
  List.iter
    (fun (rel, tuple) -> ignore (Database.insert store rel tuple))
    node.decl.Config.facts;
  node.store <- store;
  Lineage.clear node.lineage

let fresh_serial node =
  node.serial <- node.serial + 1;
  node.serial

let fresh_ref node =
  Printf.sprintf "%s/%d" (Peer_id.to_string node.node_id) (fresh_serial node)

let configure_cache node (opts : Options.t) =
  node.cache <-
    (if opts.Options.use_query_cache then
       Some
         (Codb_cache.Qcache.create ~max_entries:opts.Options.cache_capacity
            ~max_bytes:opts.Options.cache_max_bytes ~ttl:opts.Options.cache_ttl
            ~containment:opts.Options.cache_containment ())
     else None)

let configure_subs node (opts : Options.t) =
  node.subs <-
    (if opts.Options.subscriptions then
       Some (Codb_sub.Registry.create ~limit:opts.Options.max_subscriptions)
     else None)

let mirrors_sorted node =
  let all = Hashtbl.fold (fun id m acc -> (id, m) :: acc) node.sub_mirrors [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let set_rules node ~outgoing ~incoming =
  node.outgoing <- outgoing;
  node.incoming <- incoming;
  (* rule installation is always sequential; interning the rules'
     constants now lets the parallel runtime evaluate them under the
     minting freeze without ever creating an intern slot *)
  List.iter
    (fun (r : Config.rule_decl) -> Codb_cq.Query.intern_constants r.Config.rule_query)
    (outgoing @ incoming);
  (* acquaintances and rule bodies changed: cached answers may rest on
     rules that no longer exist *)
  Option.iter Codb_cache.Qcache.clear node.cache

let cache_snapshot node =
  Option.map
    (fun cache ->
      let c = Codb_cache.Qcache.counters cache in
      {
        Stats.csn_hits_exact = c.Codb_cache.Qcache.hits_exact;
        csn_hits_containment = c.Codb_cache.Qcache.hits_containment;
        csn_misses = c.Codb_cache.Qcache.misses;
        csn_stores = c.Codb_cache.Qcache.stores;
        csn_invalidations = c.Codb_cache.Qcache.epoch_invalidations;
        csn_expirations = c.Codb_cache.Qcache.ttl_expirations;
        csn_evictions = c.Codb_cache.Qcache.evictions;
        csn_bytes_served = c.Codb_cache.Qcache.bytes_served;
        csn_entries = c.Codb_cache.Qcache.entries;
        csn_stored_bytes = c.Codb_cache.Qcache.stored_bytes;
      })
    node.cache

let note_local_write node =
  Option.iter
    (fun cache -> ignore (Codb_cache.Qcache.note_update cache [ node.node_id ]))
    node.cache

let find_rule rules id = List.find_opt (fun r -> String.equal r.Config.rule_id id) rules

let rule_out node id = find_rule node.outgoing id

let rule_in node id = find_rule node.incoming id

let acquaintances node =
  let add acc peer = if List.mem peer acc then acc else peer :: acc in
  let step acc (r : Config.rule_decl) =
    if String.equal r.Config.importer (Peer_id.to_string node.node_id) then
      add acc (Peer_id.of_string r.Config.source)
    else add acc (Peer_id.of_string r.Config.importer)
  in
  let all = List.fold_left step [] (node.outgoing @ node.incoming) in
  List.sort Peer_id.compare all

let update_state node update_id =
  Hashtbl.find_opt node.updates (Ids.string_of_update update_id)

let add_update_state node (st : Update_state.t) =
  Hashtbl.replace node.updates (Ids.string_of_update st.Update_state.ust_update) st

let explain node ~rel tuple = Lineage.origin_of ~store:node.store node.lineage ~rel tuple

(* A crash loses everything held in memory by the protocol layer:
   in-flight update and query instances, diffusion bookkeeping, probe
   dedup, cached answers.  The store, rules, stats, lineage and the
   transport's sequence/dedup tables survive (see {!Relay.abandon}):
   the store because coDB stores are persistent, the transport tables
   because reusing sequence numbers after a restart would make peers
   discard the restarted node's first messages as stale duplicates. *)
let reset_volatile node =
  Hashtbl.reset node.updates;
  Hashtbl.reset node.query_instances;
  Hashtbl.reset node.sub_refs;
  Hashtbl.reset node.seen_probes;
  Option.iter Relay.abandon node.relay;
  Option.iter Codb_cache.Qcache.clear node.cache;
  (* subscription state is volatile too: hosted registrations, the
     mirrors of this node's own remote subscriptions, and any deltas
     still waiting in a batch window all die with the process.
     Subscribers re-arm against the restarted host (System.restart). *)
  let torn =
    (match node.subs with Some reg -> Codb_sub.Registry.clear reg | None -> 0)
    + Hashtbl.length node.sub_mirrors
  in
  if torn > 0 then begin
    let sb = Stats.sub node.stats in
    sb.Stats.sb_torn_down <- sb.Stats.sb_torn_down + torn
  end;
  node.subs <- None;
  Hashtbl.reset node.sub_mirrors;
  Codb_sub.Outbox.clear node.sub_outbox

(* Any user-supplied callback currently armed on this node?  Root
   queries streaming to [on_answer], locally-owned subscriptions with
   a delta callback, and mirrors created with one all observe
   cross-node arrival order directly, so the parallel runtime keeps
   such nodes out of fanned-out batches (their handlers run on the
   simulation domain, in strict event order). *)
let has_live_callbacks node =
  Hashtbl.fold
    (fun _ (qs : Query_state.t) acc ->
      acc
      ||
      match qs.Query_state.qst_kind with
      | Query_state.Root { on_answer = Some _; _ } -> true
      | Query_state.Root { on_answer = None; _ } | Query_state.Responder _ -> false)
    node.query_instances false
  || (match node.subs with
     | Some reg ->
         List.exists
           (fun (e : Codb_sub.Registry.entry) ->
             match e.Codb_sub.Registry.e_owner with
             | Codb_sub.Registry.Local (Some _) -> true
             | Codb_sub.Registry.Local None | Codb_sub.Registry.Remote _ -> false)
           (Codb_sub.Registry.entries reg)
     | None -> false)
  || Hashtbl.fold
       (fun _ m acc -> acc || Codb_sub.Mirror.has_callback m)
       node.sub_mirrors false

let is_consistent node =
  let source = Eval.of_database node.store in
  let violated q = Eval.answers source q <> [] in
  let consistent = not (List.exists violated node.decl.Config.constraints) in
  Stats.set_inconsistent node.stats (not consistent);
  consistent
