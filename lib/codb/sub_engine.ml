module Sub = Codb_sub.Subscription
module Registry = Codb_sub.Registry
module Mirror = Codb_sub.Mirror
module Outbox = Codb_sub.Outbox
module Peer_id = Codb_net.Peer_id
module Database = Codb_relalg.Database
module Eval = Codb_cq.Eval
module Query = Codb_cq.Query
module Parser = Codb_cq.Parser
module Pretty = Codb_cq.Pretty

let scounters rt = Stats.sub rt.Runtime.node.Node.stats

let with_counters rt f =
  let sb = scounters rt in
  Stats.with_eval_counters
    ~note:(fun ~probes ~scans ~zvisited ~zpruned ->
      sb.Stats.sb_probes <- sb.Stats.sb_probes + probes;
      sb.Stats.sb_scans <- sb.Stats.sb_scans + scans;
      sb.Stats.sb_zvisited <- sb.Stats.sb_zvisited + zvisited;
      sb.Stats.sb_zpruned <- sb.Stats.sb_zpruned + zpruned)
    f

let source rt =
  Eval.of_database ~index_budget:rt.Runtime.opts.Options.index_budget
    rt.Runtime.node.Node.store

let payload_size rt p =
  if rt.Runtime.opts.Options.wire_codec then Payload.encoded_size p
  else Payload.size p

let query_text q = Fmt.str "%a" Pretty.query q

(* Epoch agreement with the one-shot query cache: the instant an
   answer delta becomes observable (host callback about to run, wire
   push about to leave), cached answers that predate the store change
   it reflects must die.  Otherwise a client could see the new answer
   arrive by subscription and then get the old answer set by asking
   the same query one-shot — the update path only stales epochs at
   update finalization, which is too late for mid-update deltas. *)
let stale_cache rt peers =
  match rt.Runtime.node.Node.cache with
  | None -> ()
  | Some cache ->
      let n = Codb_cache.Qcache.note_update cache peers in
      let sb = scounters rt in
      sb.Stats.sb_cache_staled <- sb.Stats.sb_cache_staled + n

let note_delivery rt (d : Sub.delta) =
  let sb = scounters rt in
  sb.Stats.sb_deltas_out <- sb.Stats.sb_deltas_out + 1;
  sb.Stats.sb_adds <- sb.Stats.sb_adds + List.length d.Sub.d_adds;
  sb.Stats.sb_retracts <- sb.Stats.sb_retracts + List.length d.Sub.d_retracts

let send_push rt ~dst payload =
  let sb = scounters rt in
  sb.Stats.sb_push_msgs <- sb.Stats.sb_push_msgs + 1;
  sb.Stats.sb_bytes <- sb.Stats.sb_bytes + payload_size rt payload;
  ignore (Reliable.send_noted rt ~dst payload)

let flush_dst rt dst =
  match Outbox.take rt.Runtime.node.Node.sub_outbox ~dst with
  | [] -> ()
  | [ (sub_id, d) ] ->
      note_delivery rt d;
      send_push rt ~dst
        (Payload.Answer_delta
           { sub_id; adds = d.Sub.d_adds; retracts = d.Sub.d_retracts;
             tag = d.Sub.d_tag })
  | entries ->
      List.iter (fun (_, d) -> note_delivery rt d) entries;
      send_push rt ~dst
        (Payload.Answer_batch
           {
             entries =
               List.map
                 (fun (sub_id, d) ->
                   { Payload.se_sub = sub_id; se_adds = d.Sub.d_adds;
                     se_retracts = d.Sub.d_retracts; se_tag = d.Sub.d_tag })
                 entries;
           })

let schedule_flush rt dst =
  let outbox = rt.Runtime.node.Node.sub_outbox in
  if not (Outbox.scheduled outbox ~dst) then begin
    Outbox.set_scheduled outbox ~dst true;
    rt.Runtime.schedule ~delay:rt.Runtime.opts.Options.sub_batch_window
      (fun () ->
        Outbox.set_scheduled outbox ~dst false;
        flush_dst rt dst)
  end

let push_remote rt ~dst ~sub_id (d : Sub.delta) =
  if rt.Runtime.opts.Options.sub_batch_window > 0.0 then begin
    let coalesced =
      Outbox.add rt.Runtime.node.Node.sub_outbox ~dst ~sub_id d
    in
    let sb = scounters rt in
    sb.Stats.sb_coalesced <- sb.Stats.sb_coalesced + coalesced;
    schedule_flush rt dst
  end
  else begin
    note_delivery rt d;
    send_push rt ~dst
      (Payload.Answer_delta
         { sub_id; adds = d.Sub.d_adds; retracts = d.Sub.d_retracts;
           tag = d.Sub.d_tag })
  end

let deliver rt (entry : Registry.entry) (d : Sub.delta) =
  if not (Sub.delta_is_empty d) then begin
    stale_cache rt [ rt.Runtime.node.Node.node_id ];
    Sub.note_delivered entry.Registry.e_sub;
    match entry.Registry.e_owner with
    | Registry.Local cb ->
        note_delivery rt d;
        (match cb with Some f -> f d | None -> ())
    | Registry.Remote dst ->
        push_remote rt ~dst ~sub_id:(Sub.id entry.Registry.e_sub) d
  end

let on_store_delta rt ~rel ~delta ~tag =
  match rt.Runtime.node.Node.subs with
  | None -> ()
  | Some reg -> (
      match Registry.affected reg ~rel with
      | [] -> ()
      | entries ->
          let sb = scounters rt in
          let opts = rt.Runtime.opts in
          let src = source rt in
          let tag = tag () in
          List.iter
            (fun (entry : Registry.entry) ->
              let sub = entry.Registry.e_sub in
              sb.Stats.sb_deltas_in <- sb.Stats.sb_deltas_in + 1;
              let d =
                with_counters rt (fun () ->
                    if opts.Options.sub_naive then
                      Sub.reevaluate sub ~zone_maps:opts.Options.zone_maps
                        ~planner:opts.Options.planner ~source:src ~tag
                    else begin
                      let d, dropped =
                        Sub.apply_delta sub ~zone_maps:opts.Options.zone_maps
                          ~planner:opts.Options.planner ~source:src
                          ~delta_rel:rel ~delta ~tag
                      in
                      sb.Stats.sb_prefiltered <-
                        sb.Stats.sb_prefiltered + dropped;
                      d
                    end)
              in
              deliver rt entry d)
            entries)

let refresh_all rt ~tag =
  match rt.Runtime.node.Node.subs with
  | None -> ()
  | Some reg ->
      let opts = rt.Runtime.opts in
      let src = source rt in
      List.iter
        (fun (entry : Registry.entry) ->
          let d =
            with_counters rt (fun () ->
                Sub.refresh entry.Registry.e_sub
                  ~zone_maps:opts.Options.zone_maps
                  ~planner:opts.Options.planner ~source:src ~tag)
          in
          deliver rt entry d)
        (Registry.entries reg)

let missing_relations rt query =
  List.filter
    (fun rel -> not (Database.has_relation rt.Runtime.node.Node.store rel))
    (Query.body_relations query)

let make_sub rt ~sub_id query =
  let opts = rt.Runtime.opts in
  (* registration is always a sequential event; interning the query's
     constants here lets later incremental maintenance run inside the
     parallel runtime's minting freeze *)
  Query.intern_constants query;
  match missing_relations rt query with
  | [] ->
      Sub.create ~pushdown:opts.Options.pushdown
        ~max_preds:opts.Options.pushdown_max_preds ~sub_id query
  | missing ->
      Error
        (Printf.sprintf "unknown relation%s: %s"
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing))

let register_local rt ?on_delta query =
  let node = rt.Runtime.node in
  match node.Node.subs with
  | None -> Error "subscriptions are disabled (Options.subscriptions)"
  | Some reg -> (
      let sb = scounters rt in
      let reject e =
        sb.Stats.sb_rejected <- sb.Stats.sb_rejected + 1;
        Error e
      in
      match make_sub rt ~sub_id:(Node.fresh_ref node) query with
      | Error e -> reject e
      | Ok sub -> (
          match Registry.register reg sub (Registry.Local on_delta) with
          | Error e -> reject e
          | Ok () ->
              sb.Stats.sb_registered <- sb.Stats.sb_registered + 1;
              Durable.log_sub_add node ~sub_id:(Sub.id sub)
                ~owner:Durable.Olocal ~query_text:(query_text query);
              let d =
                with_counters rt (fun () ->
                    Sub.refresh sub
                      ~zone_maps:rt.Runtime.opts.Options.zone_maps
                      ~planner:rt.Runtime.opts.Options.planner
                      ~source:(source rt) ~tag:"seed")
              in
              deliver rt
                { Registry.e_sub = sub; e_owner = Registry.Local on_delta }
                d;
              Ok (Sub.id sub)))

let unregister_local rt sub_id =
  match rt.Runtime.node.Node.subs with
  | None -> false
  | Some reg ->
      let removed = Registry.unregister reg sub_id in
      if removed then begin
        let sb = scounters rt in
        sb.Stats.sb_unregistered <- sb.Stats.sb_unregistered + 1;
        Durable.log_sub_remove rt.Runtime.node ~sub_id
      end;
      removed

let subscribe_remote rt ~host ?on_delta query =
  let node = rt.Runtime.node in
  if node.Node.subs = None then
    Error "subscriptions are disabled (Options.subscriptions)"
  else
    match Query.well_formed ~allow_existential_head:false query with
    | Error e -> Error e
    | Ok () ->
        let sub_id = Node.fresh_ref node in
        Hashtbl.replace node.Node.sub_mirrors sub_id
          (Mirror.create ~sub_id ~host ?on_delta query);
        Durable.log_mirror_add node ~sub_id ~host
          ~query_text:(query_text query);
        ignore
          (Reliable.send_noted rt ~dst:host
             (Payload.Sub_register { sub_id; query_text = query_text query }));
        Ok sub_id

let unsubscribe_remote rt sub_id =
  let node = rt.Runtime.node in
  match Hashtbl.find_opt node.Node.sub_mirrors sub_id with
  | None -> false
  | Some m ->
      Hashtbl.remove node.Node.sub_mirrors sub_id;
      Durable.log_mirror_remove node ~sub_id;
      ignore
        (Reliable.send_noted rt ~dst:(Mirror.host m)
           (Payload.Sub_unregister { sub_id }));
      true

let mirror rt sub_id = Hashtbl.find_opt rt.Runtime.node.Node.sub_mirrors sub_id

(* After a peer restarts it has forgotten every subscription we hold
   against it; re-send the registrations.  The host answers each with
   a fresh full-answer snapshot, which the mirror absorbs
   idempotently. *)
let rearm_towards rt ~host =
  let node = rt.Runtime.node in
  if node.Node.subs <> None then
    List.iter
      (fun (sub_id, m) ->
        if Peer_id.equal (Mirror.host m) host then begin
          let sb = scounters rt in
          sb.Stats.sb_rearmed <- sb.Stats.sb_rearmed + 1;
          ignore
            (Reliable.send_noted rt ~dst:host
               (Payload.Sub_register
                  { sub_id; query_text = query_text (Mirror.query m) }))
        end)
      (Node.mirrors_sorted node)

let refuse rt ~dst ~sub_id reason =
  let sb = scounters rt in
  sb.Stats.sb_rejected <- sb.Stats.sb_rejected + 1;
  ignore
    (Reliable.send_noted rt ~dst
       (Payload.Sub_registered { sub_id; accepted = false; reason }))

let on_register rt ~src ~sub_id ~text =
  match rt.Runtime.node.Node.subs with
  | None -> refuse rt ~dst:src ~sub_id "subscriptions are disabled at this node"
  | Some reg -> (
      match Parser.parse_query text with
      | Error e -> refuse rt ~dst:src ~sub_id ("unparsable query: " ^ e)
      | Ok query -> (
          (* a re-register (subscriber re-arming after our restart, or
             a duplicated Sub_register frame) replaces the existing
             registration and answers with a fresh snapshot *)
          let existed = Registry.unregister reg sub_id in
          match make_sub rt ~sub_id query with
          | Error e -> refuse rt ~dst:src ~sub_id e
          | Ok sub -> (
              match Registry.register reg sub (Registry.Remote src) with
              | Error e -> refuse rt ~dst:src ~sub_id e
              | Ok () ->
                  let sb = scounters rt in
                  sb.Stats.sb_registered <- sb.Stats.sb_registered + 1;
                  Durable.log_sub_add rt.Runtime.node ~sub_id
                    ~owner:(Durable.Oremote src) ~query_text:text;
                  ignore
                    (Reliable.send_noted rt ~dst:src
                       (Payload.Sub_registered
                          { sub_id; accepted = true; reason = "" }));
                  let d =
                    with_counters rt (fun () ->
                        Sub.refresh sub
                          ~zone_maps:rt.Runtime.opts.Options.zone_maps
                          ~planner:rt.Runtime.opts.Options.planner
                          ~source:(source rt)
                          ~tag:(if existed then "rearm" else "seed"))
                  in
                  deliver rt
                    { Registry.e_sub = sub; e_owner = Registry.Remote src }
                    d)))

let on_unregister rt ~sub_id =
  match rt.Runtime.node.Node.subs with
  | None -> ()
  | Some reg ->
      if Registry.unregister reg sub_id then begin
        let sb = scounters rt in
        sb.Stats.sb_unregistered <- sb.Stats.sb_unregistered + 1;
        Durable.log_sub_remove rt.Runtime.node ~sub_id
      end

let on_registered rt ~sub_id ~accepted ~reason =
  match mirror rt sub_id with
  | None -> ()
  | Some m ->
      if accepted then Mirror.mark_accepted m else Mirror.mark_rejected m reason

let apply_entries rt ~src entries =
  List.iter
    (fun (sub_id, d) ->
      match mirror rt sub_id with
      | None -> () (* unsubscribed meanwhile, or this node restarted *)
      | Some m ->
          (* epoch agreement, subscriber side: one-shot answers cached
             from this host predate the delta about to be applied *)
          stale_cache rt [ src ];
          Mirror.apply m d)
    entries

let handle rt ~src payload =
  match payload with
  | Payload.Sub_register { sub_id; query_text = text } ->
      on_register rt ~src ~sub_id ~text
  | Payload.Sub_registered { sub_id; accepted; reason } ->
      on_registered rt ~sub_id ~accepted ~reason
  | Payload.Sub_unregister { sub_id } -> on_unregister rt ~sub_id
  | Payload.Answer_delta { sub_id; adds; retracts; tag } ->
      apply_entries rt ~src
        [ (sub_id, { Sub.d_adds = adds; d_retracts = retracts; d_tag = tag }) ]
  | Payload.Answer_batch { entries } ->
      apply_entries rt ~src
        (List.map
           (fun (e : Payload.sub_entry) ->
             ( e.Payload.se_sub,
               { Sub.d_adds = e.Payload.se_adds;
                 d_retracts = e.Payload.se_retracts; d_tag = e.Payload.se_tag }
             ))
           entries)
  | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
  | Payload.Update_link_closed _ | Payload.Update_ack _
  | Payload.Update_terminated _ | Payload.Query_request _ | Payload.Query_data _
  | Payload.Query_done _ | Payload.Rules_file _ | Payload.Start_update
  | Payload.Stats_request | Payload.Stats_response _ | Payload.Discovery_probe _
  | Payload.Discovery_reply _ | Payload.Seq _ | Payload.Seq_ack _ ->
      ()
