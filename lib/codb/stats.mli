(** The per-node statistical module (paper, Section 4).

    "This module accumulates various information about global updates
    such as: total execution time of an update, number of query result
    messages received per coordination rule and the volume of the data
    in each message, longest update propagation path, and so on."

    Mutable accumulators live on each node; immutable {!snapshot}s are
    what a node sends to the super-peer in a [Stats_response]. *)

module Peer_id = Codb_net.Peer_id

type rule_traffic = {
  mutable rt_msgs : int;
  mutable rt_bytes : int;
  mutable rt_tuples : int;
}

type update_stat = {
  us_update : Ids.update_id;
  mutable us_started : float;
  mutable us_finished : float option;
  mutable us_data_msgs : int;
  mutable us_control_msgs : int;
  mutable us_bytes_in : int;
  mutable us_new_tuples : int;
  mutable us_dup_suppressed : int;
  mutable us_nulls_created : int;
  mutable us_max_hops : int;  (** longest update propagation path seen *)
  mutable us_probes : int;  (** index probes during rule evaluation *)
  mutable us_scans : int;  (** relation scans during rule evaluation *)
  mutable us_zvisited : int;  (** chunks consulted by zone-map scans *)
  mutable us_zpruned : int;  (** chunks skipped by zone-map bounds *)
  mutable us_batches : int;  (** [Update_batch] messages this node sent *)
  mutable us_batch_tuples : int;  (** tuples shipped inside those batches *)
  mutable us_coalesced : int;
      (** tuples that never hit the wire: same-window duplicates and
          insert/retract pairs cancelled in the buffer *)
  mutable us_resends : int;
      (** re-sent tuples caused by bounded sent-filters forgetting
          (see {!Sent_filter.possible_resends}) *)
  mutable us_cache_staled : int;
      (** query-cache entries invalidated when this update finalised
          ({!Codb_cache.Qcache.note_update} churn) *)
  mutable us_forced : bool;
      (** the initiator's stall watchdog force-terminated this update:
          the fix-point may be incomplete on nodes that lost messages *)
  us_per_rule : (string, rule_traffic) Hashtbl.t;
      (** data traffic received, per outgoing coordination rule *)
  mutable us_queried : Peer_id.t list;  (** acquaintances we requested data from *)
  mutable us_sent_to : Peer_id.t list;  (** importers we sent results to *)
}

type cache_outcome =
  | Cache_unused  (** caching disabled for this node *)
  | Cache_miss
  | Cache_hit_exact
  | Cache_hit_containment

type query_stat = {
  qs_query : Ids.query_id;
  mutable qs_started : float;
  mutable qs_finished : float option;
  mutable qs_data_msgs : int;
  mutable qs_bytes_in : int;
  mutable qs_answers : int;
  mutable qs_certain : int;
  mutable qs_cache : cache_outcome;
  mutable qs_probes : int;
  mutable qs_scans : int;
  mutable qs_zvisited : int;  (** chunks consulted by zone-map scans *)
  mutable qs_zpruned : int;  (** chunks skipped by zone-map bounds *)
  mutable qs_complete : bool;
      (** [false] when any sub-request in the diffusion tree was
          declared failed: the answers are a lower bound *)
  mutable qs_pushed : int;
      (** sub-requests sent with a non-trivial pushed constraint set *)
  mutable qs_filtered_at_source : int;
      (** tuples a responder derived but withheld because the pushed
          constraints ruled them out (bytes that never hit the wire) *)
  mutable qs_pushdown_hits : int;
      (** sub-requests served from the responder-side (rule,
          constraints) cache *)
}

(** Node-wide fault-tolerance counters: what the reliable transport
    and the partial-answer machinery did on this node. *)
type chaos = {
  mutable ch_retransmits : int;  (** messages re-sent after an ack timeout *)
  mutable ch_dup_suppressed : int;
      (** duplicate deliveries discarded by receiver-side sequence
          dedup (retransmissions that did arrive, and injected dups) *)
  mutable ch_give_ups : int;
      (** messages abandoned after [max_retries] retransmissions *)
  mutable ch_query_timeouts : int;
      (** sub-requests declared failed past the failure deadline *)
  mutable ch_partial_answers : int;
      (** root queries that completed with [qs_complete = false] *)
  mutable ch_forced_terminations : int;
      (** updates force-terminated by the initiator's stall watchdog *)
  mutable ch_send_drops : int;
      (** sends that returned [false] (no open pipe) at call sites
          that previously discarded the result *)
  mutable ch_recovered_records : int;
      (** WAL records replayed into this node at restart (snapshot
          tuples are not records; see [ch_replayed_bytes]) *)
  mutable ch_replayed_bytes : int;
      (** snapshot + log-tail bytes consumed by recovery *)
  mutable ch_refetched_bytes : int;
      (** post-restart network bytes spent re-fetching state this node
          once held (the cost durability exists to shrink) *)
}

(** Node-wide standing-query counters ({!Codb_sub}): registrations,
    delta traffic in and out, push bytes, and the evaluator work
    attributed to incremental maintenance.  All zero while
    [Options.subscriptions] is off. *)
type sub_counters = {
  mutable sb_registered : int;  (** subscriptions accepted (local + remote) *)
  mutable sb_rejected : int;
      (** registrations refused (limit, duplicate, malformed query) *)
  mutable sb_unregistered : int;  (** explicit unregistrations *)
  mutable sb_deltas_in : int;
      (** store deltas examined per affected subscription *)
  mutable sb_prefiltered : int;
      (** delta tuples discarded by the pushed-down constraints before
          the semi-naive join ever saw them *)
  mutable sb_deltas_out : int;  (** non-empty answer deltas delivered *)
  mutable sb_push_msgs : int;  (** [Answer_delta]/[Answer_batch] messages sent *)
  mutable sb_adds : int;  (** answer tuples added across deliveries *)
  mutable sb_retracts : int;
  mutable sb_bytes : int;  (** payload bytes of pushed answer deltas *)
  mutable sb_coalesced : int;
      (** tuples cancelled or absorbed inside a [sub_batch_window] *)
  mutable sb_probes : int;  (** evaluator probes doing subscription maintenance *)
  mutable sb_scans : int;
  mutable sb_zvisited : int;  (** chunks consulted by zone-map scans *)
  mutable sb_zpruned : int;  (** chunks skipped by zone-map bounds *)
  mutable sb_cache_staled : int;
      (** cache entries invalidated to keep one-shot answers no staler
          than delivered subscription deltas *)
  mutable sb_torn_down : int;  (** subscriptions/mirrors lost to crashes *)
  mutable sb_rearmed : int;  (** re-registrations sent after a host restart *)
}

type t

val create : Peer_id.t -> t

val owner : t -> Peer_id.t

val chaos : t -> chaos

val sub : t -> sub_counters

val with_eval_counters :
  note:(probes:int -> scans:int -> zvisited:int -> zpruned:int -> unit) ->
  (unit -> 'a) ->
  'a
(** Run [f] and report the evaluator access-path counter deltas it
    caused to [note] — the one way every protocol layer (update
    fix-point, query engine, subscription maintenance) attributes
    shared-evaluator work to its own statistic. *)

val note_retransmit : t -> unit

val note_dup_suppressed : t -> unit

val note_give_up : t -> unit

val note_query_timeout : t -> unit

val note_partial_answer : t -> unit

val note_forced_termination : t -> unit

val note_send_drop : t -> unit

val note_recovery : t -> records:int -> replayed_bytes:int -> unit
(** Credit a completed WAL recovery to this node's counters. *)

val note_refetched : t -> int -> unit
(** Count post-restart incoming update-data bytes as refetch cost. *)

val update_stat : t -> now:float -> Ids.update_id -> update_stat
(** Find or create the accumulator for an update (created with
    [us_started = now]). *)

val find_update : t -> Ids.update_id -> update_stat option

val query_stat : t -> now:float -> Ids.query_id -> query_stat

val find_query : t -> Ids.query_id -> query_stat option

val rule_traffic : update_stat -> string -> rule_traffic

val note_queried : update_stat -> Peer_id.t -> unit

val note_sent_to : update_stat -> Peer_id.t -> unit

val set_inconsistent : t -> bool -> unit

val is_inconsistent : t -> bool

(** {1 Snapshots} *)

type rule_traffic_snap = {
  rts_rule : string;
  rts_msgs : int;
  rts_bytes : int;
  rts_tuples : int;
}

type update_snap = {
  usn_update : Ids.update_id;
  usn_started : float;
  usn_finished : float option;
  usn_data_msgs : int;
  usn_control_msgs : int;
  usn_bytes_in : int;
  usn_new_tuples : int;
  usn_dup_suppressed : int;
  usn_nulls_created : int;
  usn_max_hops : int;
  usn_probes : int;
  usn_scans : int;
  usn_zvisited : int;
  usn_zpruned : int;
  usn_batches : int;
  usn_batch_tuples : int;
  usn_coalesced : int;
  usn_resends : int;
  usn_cache_staled : int;
  usn_forced : bool;
  usn_per_rule : rule_traffic_snap list;
  usn_queried : Peer_id.t list;
  usn_sent_to : Peer_id.t list;
}

type query_snap = {
  qsn_query : Ids.query_id;
  qsn_started : float;
  qsn_finished : float option;
  qsn_data_msgs : int;
  qsn_bytes_in : int;
  qsn_answers : int;
  qsn_certain : int;
  qsn_cache : cache_outcome;
  qsn_probes : int;
  qsn_scans : int;
  qsn_zvisited : int;
  qsn_zpruned : int;
  qsn_complete : bool;
  qsn_pushed : int;
  qsn_filtered_at_source : int;
  qsn_pushdown_hits : int;
}

type chaos_snap = {
  chn_retransmits : int;
  chn_dup_suppressed : int;
  chn_give_ups : int;
  chn_query_timeouts : int;
  chn_partial_answers : int;
  chn_forced_terminations : int;
  chn_send_drops : int;
  chn_recovered_records : int;
  chn_replayed_bytes : int;
  chn_refetched_bytes : int;
}

(** Frozen {!sub_counters}. *)
type sub_snap = {
  ssn_registered : int;
  ssn_rejected : int;
  ssn_unregistered : int;
  ssn_deltas_in : int;
  ssn_prefiltered : int;
  ssn_deltas_out : int;
  ssn_push_msgs : int;
  ssn_adds : int;
  ssn_retracts : int;
  ssn_bytes : int;
  ssn_coalesced : int;
  ssn_probes : int;
  ssn_scans : int;
  ssn_zvisited : int;
  ssn_zpruned : int;
  ssn_cache_staled : int;
  ssn_torn_down : int;
  ssn_rearmed : int;
}

(** Frozen view of a node's {!Codb_cache.Qcache} counters, shipped in
    [Stats_response] messages alongside the per-query records. *)
type cache_snap = {
  csn_hits_exact : int;
  csn_hits_containment : int;
  csn_misses : int;
  csn_stores : int;
  csn_invalidations : int;  (** entries dropped for a stale epoch stamp *)
  csn_expirations : int;
  csn_evictions : int;
  csn_bytes_served : int;
  csn_entries : int;
  csn_stored_bytes : int;
}

type snapshot = {
  snap_node : Peer_id.t;
  snap_inconsistent : bool;
  snap_store_tuples : int;
  snap_updates : update_snap list;
  snap_queries : query_snap list;
  snap_cache : cache_snap option;  (** [None] when caching is off *)
  snap_chaos : chaos_snap;
  snap_sub : sub_snap;
}

val snapshot : ?store_tuples:int -> ?cache:cache_snap -> t -> snapshot

val snapshot_size_bytes : snapshot -> int
(** Estimated wire size of a snapshot (for the network simulator). *)

val chaos_snap_is_zero : chaos_snap -> bool

val sub_snap_is_zero : sub_snap -> bool

val pp_update_snap : update_snap Fmt.t

val pp_chaos_snap : chaos_snap Fmt.t

val pp_cache_snap : cache_snap Fmt.t

val pp_sub_snap : sub_snap Fmt.t

val pp_snapshot : snapshot Fmt.t
