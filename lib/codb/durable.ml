(* The durability layer: what a node writes to its WAL at every commit
   point, what a snapshot contains, and how a restart turns both back
   into live node state.

   The on-disk format reuses the compact wire codec: each log record
   and each snapshot is one codec message (tag byte + varint/zigzag/
   dictionary-string fields), framed and CRC-protected by
   {!Codb_store.Frame} below.  Everything order-sensitive is written
   sorted, so two nodes with equal state produce byte-identical
   snapshots. *)

module Codec = Codb_net.Codec
module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple
module Database = Codb_relalg.Database
module Parser = Codb_cq.Parser
module Pretty = Codb_cq.Pretty
module Query = Codb_cq.Query
module Sub = Codb_sub.Subscription
module Registry = Codb_sub.Registry
module Mirror = Codb_sub.Mirror
module Backend = Codb_store.Backend
module Wal = Codb_store.Wal
module Crc32 = Codb_store.Crc32

(* ---- log records ----------------------------------------------------- *)

type owner = Olocal | Oremote of Peer_id.t

type record =
  | Insert of { rel : string; tuples : Tuple.t list }
  | Import of {
      rule : string;
      rel : string;
      hops : int;
      at : float;
      tuples : Tuple.t list;
    }
  | Seq_reserve of { upto : int }
  | Sub_add of { sub_id : string; owner : owner; query_text : string }
  | Sub_remove of { sub_id : string }
  | Mirror_add of { sub_id : string; host : Peer_id.t; query_text : string }
  | Mirror_remove of { sub_id : string }

let put_owner w = function
  | Olocal -> Codec.byte w 0
  | Oremote peer ->
      Codec.byte w 1;
      Codec.string w (Peer_id.to_string peer)

let get_owner r =
  match Codec.read_byte r with
  | 0 -> Olocal
  | 1 -> Oremote (Peer_id.of_string (Codec.read_string r))
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown owner tag %d" n))

(* Dictionary-mode records ([Options.link_dicts]) are distinguished
   from legacy ones by a marker byte in front of the tag: the record
   tags stop at 6, so 0x10 is unambiguous.  Marked records encode
   their strings against a dictionary that persists across the log
   stream (reset at every compaction, so the live tail always starts
   from an empty table); replay rebuilds the mirror in record order.
   Unmarked records keep the per-record inline dictionary, which lets
   one log mix both formats. *)
let dict_marker = 0x10

let encode_record ?dict record =
  let w =
    match dict with
    | None -> Codec.writer ~initial:64 ()
    | Some d ->
        let w = Codec.writer ~initial:64 ~mode:(Codec.Linked d) () in
        Codec.byte w dict_marker;
        w
  in
  (match record with
  | Insert { rel; tuples } ->
      Codec.byte w 0;
      Codec.string w rel;
      Payload.put_tuples w tuples
  | Import { rule; rel; hops; at; tuples } ->
      Codec.byte w 1;
      Codec.string w rule;
      Codec.string w rel;
      Codec.zigzag w hops;
      Codec.float64 w at;
      Payload.put_tuples w tuples
  | Seq_reserve { upto } ->
      Codec.byte w 2;
      Codec.varint w upto
  | Sub_add { sub_id; owner; query_text } ->
      Codec.byte w 3;
      Codec.string w sub_id;
      put_owner w owner;
      Codec.raw_string w query_text
  | Sub_remove { sub_id } ->
      Codec.byte w 4;
      Codec.string w sub_id
  | Mirror_add { sub_id; host; query_text } ->
      Codec.byte w 5;
      Codec.string w sub_id;
      Codec.string w (Peer_id.to_string host);
      Codec.raw_string w query_text
  | Mirror_remove { sub_id } ->
      Codec.byte w 6;
      Codec.string w sub_id);
  Codec.contents w

let get_record r =
  match Codec.read_byte r with
  | 0 ->
      let rel = Codec.read_string r in
      Insert { rel; tuples = Payload.get_tuples r }
  | 1 ->
      let rule = Codec.read_string r in
      let rel = Codec.read_string r in
      let hops = Codec.read_zigzag r in
      let at = Codec.read_float64 r in
      Import { rule; rel; hops; at; tuples = Payload.get_tuples r }
  | 2 -> Seq_reserve { upto = Codec.read_varint r }
  | 3 ->
      let sub_id = Codec.read_string r in
      let owner = get_owner r in
      Sub_add { sub_id; owner; query_text = Codec.read_raw_string r }
  | 4 -> Sub_remove { sub_id = Codec.read_string r }
  | 5 ->
      let sub_id = Codec.read_string r in
      let host = Peer_id.of_string (Codec.read_string r) in
      Mirror_add { sub_id; host; query_text = Codec.read_raw_string r }
  | 6 -> Mirror_remove { sub_id = Codec.read_string r }
  | n -> raise (Codec.Malformed (Printf.sprintf "unknown WAL record tag %d" n))

let decode_record ?dict bytes =
  if String.length bytes > 0 && Char.code bytes.[0] = dict_marker then begin
    let tab =
      match dict with
      | Some tab -> tab
      | None ->
          raise (Codec.Malformed "dictionary record without a replay table")
    in
    let r = Codec.reader ~mode:(Codec.R_linked tab) bytes in
    ignore (Codec.read_byte r : int);
    get_record r
  end
  else get_record (Codec.reader bytes)

(* ---- snapshots ------------------------------------------------------- *)

type sub_snap = { ss_id : string; ss_owner : owner; ss_query : string }

type mirror_snap = {
  ms_id : string;
  ms_host : Peer_id.t;
  ms_query : string;
  ms_accepted : bool;
  ms_answers : Tuple.t list;
}

type snapshot = {
  sn_store : (string * Tuple.t list) list;
  sn_lineage : ((string * Tuple.t) * Lineage.import list) list;
  sn_next_seq : int;
  sn_seen : string list;
  sn_sent : (string * string * Tuple.t list) list;
      (** (update-id, rule-id, provably-sent tuples) *)
  sn_subs : sub_snap list;
  sn_mirrors : mirror_snap list;
}

let snapshot_version = 1
let snapshot_version_tabled = 2

let query_text q = Fmt.str "%a" Pretty.query q

let sorted_tuples db rel = List.sort Tuple.compare (Database.tuples db rel)

(* What we can still prove was sent, per live update state, sorted by
   update id then rule id.  Send records covered only by the log tail
   (appended after this snapshot was cut) are lost by design: a
   recovered node may re-send those tuples and receivers dedup them —
   a duplicate costs bytes, a drop would cost correctness. *)
let sent_entries (node : Node.t) =
  Hashtbl.fold
    (fun uid (st : Update_state.t) acc ->
      let rules =
        Hashtbl.fold
          (fun rule filter acc ->
            match Sent_filter.elements filter with
            | [] -> acc
            | tuples -> (uid, rule, tuples) :: acc)
          st.Update_state.ust_sent []
      in
      rules @ acc)
    node.Node.updates []
  |> List.sort (fun (u1, r1, _) (u2, r2, _) ->
         match String.compare u1 u2 with 0 -> String.compare r1 r2 | c -> c)

let registry_entries (node : Node.t) =
  match node.Node.subs with
  | None -> []
  | Some reg ->
      List.map
        (fun (e : Registry.entry) ->
          {
            ss_id = Sub.id e.Registry.e_sub;
            ss_owner =
              (match e.Registry.e_owner with
              | Registry.Local _ -> Olocal
              | Registry.Remote peer -> Oremote peer);
            ss_query = query_text (Sub.query e.Registry.e_sub);
          })
        (Registry.entries reg)

let mirror_entries (node : Node.t) =
  List.map
    (fun (sub_id, m) ->
      {
        ms_id = sub_id;
        ms_host = Mirror.host m;
        ms_query = query_text (Mirror.query m);
        ms_accepted = Mirror.accepted m;
        ms_answers = Mirror.answers m;
      })
    (Node.mirrors_sorted node)

let put_snapshot w (node : Node.t) =
  let store = node.Node.store in
  let rels = List.sort String.compare (Database.rel_names store) in
  Codec.varint w (List.length rels);
  List.iter
    (fun rel ->
      Codec.string w rel;
      Payload.put_tuples w (sorted_tuples store rel))
    rels;
  let lineage = Lineage.all node.Node.lineage in
  Codec.varint w (List.length lineage);
  List.iter
    (fun ((rel, tuple), imports) ->
      Codec.string w rel;
      Payload.put_tuple w tuple;
      Codec.varint w (List.length imports);
      List.iter
        (fun (i : Lineage.import) ->
          Codec.string w i.Lineage.li_rule;
          Codec.zigzag w i.Lineage.li_hops;
          Codec.float64 w i.Lineage.li_at)
        imports)
    lineage;
  (match node.Node.relay with
  | None ->
      Codec.varint w 0;
      Codec.varint w 0
  | Some relay ->
      Codec.varint w (Relay.next_seq relay);
      let seen = Relay.seen_keys relay in
      Codec.varint w (List.length seen);
      List.iter (Codec.raw_string w) seen);
  let sent = sent_entries node in
  Codec.varint w (List.length sent);
  List.iter
    (fun (uid, rule, tuples) ->
      Codec.string w uid;
      Codec.string w rule;
      Payload.put_tuples w tuples)
    sent;
  let subs = registry_entries node in
  Codec.varint w (List.length subs);
  List.iter
    (fun s ->
      Codec.string w s.ss_id;
      put_owner w s.ss_owner;
      Codec.raw_string w s.ss_query)
    subs;
  let mirrors = mirror_entries node in
  Codec.varint w (List.length mirrors);
  List.iter
    (fun m ->
      Codec.string w m.ms_id;
      Codec.string w (Peer_id.to_string m.ms_host);
      Codec.raw_string w m.ms_query;
      Codec.byte w (if m.ms_accepted then 1 else 0);
      Payload.put_tuples w m.ms_answers)
    mirrors

(* Version 1 is the classic layout: body with per-message inline
   strings.  Version 2 ([Options.link_dicts]) pulls the strings out
   into one sorted, front-coded table: entry k stores only the length
   of the prefix it shares with entry k-1 plus the remaining suffix, so
   families like [upd:n0#1, upd:n0#2, ...] pay their common stem once.
   The body is written in [Tabled] mode against the sorted ids (a first
   pass harvests the strings, a second encodes against the preloaded
   table).  Decode auto-detects from the version byte, so a node can
   recover a snapshot cut under either setting. *)
let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec go k = if k < n && a.[k] = b.[k] then go (k + 1) else k in
  go 0

let encode_snapshot ?(tabled = false) (node : Node.t) =
  if not tabled then begin
    let w = Codec.writer ~initial:1024 () in
    Codec.byte w snapshot_version;
    put_snapshot w node;
    Codec.contents w
  end
  else begin
    (* pass 1: harvest the distinct strings *)
    let probe = Codec.writer ~initial:1024 ~mode:Codec.Tabled () in
    put_snapshot probe node;
    let strings = List.sort String.compare (Codec.dict_strings probe) in
    (* pass 2: encode the body against the sorted table *)
    let body = Codec.writer ~initial:(Codec.size probe) ~mode:Codec.Tabled () in
    Codec.preload body strings;
    put_snapshot body node;
    let w = Codec.writer ~initial:(Codec.size body + 64) () in
    Codec.byte w snapshot_version_tabled;
    Codec.varint w (List.length strings);
    let prev = ref "" in
    List.iter
      (fun s ->
        let shared = common_prefix_len !prev s in
        Codec.varint w shared;
        Codec.raw_string w (String.sub s shared (String.length s - shared));
        prev := s)
      strings;
    Codec.add_bytes w (Codec.contents body);
    Codec.contents w
  end

let get_snapshot r =
  let sn_store =
    List.init (Codec.read_count r) (fun _ ->
        let rel = Codec.read_string r in
        (rel, Payload.get_tuples r))
  in
  let sn_lineage =
    List.init (Codec.read_count r) (fun _ ->
        let rel = Codec.read_string r in
        let tuple = Payload.get_tuple r in
        let imports =
          List.init (Codec.read_count r) (fun _ ->
              let li_rule = Codec.read_string r in
              let li_hops = Codec.read_zigzag r in
              let li_at = Codec.read_float64 r in
              { Lineage.li_rule; li_hops; li_at })
        in
        ((rel, tuple), imports))
  in
  let sn_next_seq = Codec.read_varint r in
  let sn_seen = List.init (Codec.read_count r) (fun _ -> Codec.read_raw_string r) in
  let sn_sent =
    List.init (Codec.read_count r) (fun _ ->
        let uid = Codec.read_string r in
        let rule = Codec.read_string r in
        (uid, rule, Payload.get_tuples r))
  in
  let sn_subs =
    List.init (Codec.read_count r) (fun _ ->
        let ss_id = Codec.read_string r in
        let ss_owner = get_owner r in
        { ss_id; ss_owner; ss_query = Codec.read_raw_string r })
  in
  let sn_mirrors =
    List.init (Codec.read_count r) (fun _ ->
        let ms_id = Codec.read_string r in
        let ms_host = Peer_id.of_string (Codec.read_string r) in
        let ms_query = Codec.read_raw_string r in
        let ms_accepted = Codec.read_byte r = 1 in
        { ms_id; ms_host; ms_query; ms_accepted; ms_answers = Payload.get_tuples r })
  in
  { sn_store; sn_lineage; sn_next_seq; sn_seen; sn_sent; sn_subs; sn_mirrors }

let decode_snapshot bytes =
  let r = Codec.reader bytes in
  match Codec.read_byte r with
  | 1 -> get_snapshot r
  | 2 ->
      let count = Codec.read_count r in
      let arr = Array.make count "" in
      let prev = ref "" in
      for k = 0 to count - 1 do
        let shared = Codec.read_varint r in
        if shared > String.length !prev then
          raise (Codec.Malformed "front-coded table prefix overruns");
        let s = String.sub !prev 0 shared ^ Codec.read_raw_string r in
        arr.(k) <- s;
        prev := s
      done;
      let body_at = String.length bytes - Codec.remaining r in
      get_snapshot
        (Codec.reader ~mode:(Codec.R_tabled arr)
           (String.sub bytes body_at (String.length bytes - body_at)))
  | version ->
      raise (Codec.Malformed (Printf.sprintf "unknown snapshot version %d" version))

(* ---- logging hooks (no-ops when the node has no WAL) ----------------- *)

let log (node : Node.t) record =
  match node.Node.wal with
  | None -> ()
  | Some wal -> Wal.append wal (encode_record ?dict:node.Node.wal_dict record)

let log_insert node ~rel tuples = if tuples <> [] then log node (Insert { rel; tuples })

let log_import node ~rule ~rel ~hops ~at tuples =
  if tuples <> [] then log node (Import { rule; rel; hops; at; tuples })

let log_sub_add node ~sub_id ~owner ~query_text =
  log node (Sub_add { sub_id; owner; query_text })

let log_sub_remove node ~sub_id = log node (Sub_remove { sub_id })

let log_mirror_add node ~sub_id ~host ~query_text =
  log node (Mirror_add { sub_id; host; query_text })

let log_mirror_remove node ~sub_id = log node (Mirror_remove { sub_id })

(* Transport sequence numbers are reserved in chunks: one record
   covers the next [seq_chunk] allocations, so the hot send path logs
   once per chunk instead of once per message.  Recovery resumes at
   the reservation's end — burning at most a chunk of unused numbers,
   never reusing one a peer may have recorded. *)
let seq_chunk = 64

let note_seq (node : Node.t) seq =
  match node.Node.wal with
  | None -> ()
  | Some wal ->
      if seq >= node.Node.wal_reserved then begin
        let upto = seq + seq_chunk in
        node.Node.wal_reserved <- upto;
        Wal.append wal
          (encode_record ?dict:node.Node.wal_dict (Seq_reserve { upto }))
      end

let install (node : Node.t) (opts : Options.t) ~backend =
  let dicts = opts.Options.link_dicts in
  node.Node.wal_dict <- (if dicts then Some (Codec.Dict.sender ()) else None);
  let on_truncate =
    match node.Node.wal_dict with
    | None -> None
    | Some d -> Some (fun () -> Codec.Dict.bump d)
  in
  let wal =
    Wal.create ?on_truncate ~backend ~snapshot_every:opts.Options.snapshot_every
      ~take_snapshot:(fun () -> encode_snapshot ~tabled:dicts node)
      ()
  in
  node.Node.wal <- Some wal;
  wal

let note_bulk_load (node : Node.t) =
  match node.Node.wal with None -> () | Some wal -> Wal.snapshot_now wal

(* ---- recovery -------------------------------------------------------- *)

let restore_sub (node : Node.t) (opts : Options.t) ~sub_id ~owner ~text =
  match node.Node.subs with
  | None -> ()
  | Some reg -> (
      match Parser.parse_query text with
      | Error _ -> ()
      | Ok query -> (
          Query.intern_constants query;
          match
            Sub.create ~pushdown:opts.Options.pushdown
              ~max_preds:opts.Options.pushdown_max_preds ~sub_id query
          with
          | Error _ -> ()
          | Ok sub ->
              ignore (Registry.unregister reg sub_id);
              let owner =
                match owner with
                (* a local client's callback died with the process;
                   the subscription itself survives *)
                | Olocal -> Registry.Local None
                | Oremote peer -> Registry.Remote peer
              in
              ignore (Registry.register reg sub owner : (unit, string) result)))

let restore_mirror (node : Node.t) ~sub_id ~host ~text ~accepted ~answers =
  match Parser.parse_query text with
  | Error _ -> ()
  | Ok query ->
      Query.intern_constants query;
      let m = Mirror.create ~sub_id ~host query in
      if accepted then Mirror.mark_accepted m;
      if answers <> [] then
        Mirror.apply m
          { Sub.d_adds = answers; d_retracts = []; d_tag = "recover" };
      Hashtbl.replace node.Node.sub_mirrors sub_id m

let apply_snapshot (node : Node.t) (opts : Options.t) snap =
  let store = node.Node.store in
  List.iter
    (fun (rel, tuples) ->
      if Database.has_relation store rel then
        List.iter (fun t -> ignore (Database.insert store rel t)) tuples)
    snap.sn_store;
  List.iter
    (fun ((rel, tuple), imports) ->
      List.iter (Lineage.record_import node.Node.lineage ~rel tuple) imports)
    snap.sn_lineage;
  node.Node.recovered_sent <- snap.sn_sent;
  List.iter
    (fun s -> restore_sub node opts ~sub_id:s.ss_id ~owner:s.ss_owner ~text:s.ss_query)
    snap.sn_subs;
  List.iter
    (fun m ->
      restore_mirror node ~sub_id:m.ms_id ~host:m.ms_host ~text:m.ms_query
        ~accepted:m.ms_accepted ~answers:m.ms_answers)
    snap.sn_mirrors

let apply_record (node : Node.t) (opts : Options.t) ~seq_floor record =
  match record with
  | Insert { rel; tuples } ->
      let store = node.Node.store in
      if Database.has_relation store rel then
        List.iter (fun t -> ignore (Database.insert store rel t)) tuples
  | Import { rule; rel; hops; at; tuples } ->
      let store = node.Node.store in
      if Database.has_relation store rel then
        List.iter
          (fun t ->
            if Database.insert store rel t then
              Lineage.record_import node.Node.lineage ~rel t
                { Lineage.li_rule = rule; li_hops = hops; li_at = at })
          tuples
  | Seq_reserve { upto } -> seq_floor := max !seq_floor upto
  | Sub_add { sub_id; owner; query_text } ->
      restore_sub node opts ~sub_id ~owner ~text:query_text
  | Sub_remove { sub_id } -> (
      match node.Node.subs with
      | None -> ()
      | Some reg -> ignore (Registry.unregister reg sub_id))
  | Mirror_add { sub_id; host; query_text } ->
      restore_mirror node ~sub_id ~host ~text:query_text ~accepted:false
        ~answers:[]
  | Mirror_remove { sub_id } -> Hashtbl.remove node.Node.sub_mirrors sub_id

type recovery_stats = {
  rv_records : int;  (** intact log records replayed *)
  rv_replayed_bytes : int;  (** snapshot + log bytes consumed *)
  rv_truncated : bool;  (** the log tail was damaged and cut *)
  rv_had_snapshot : bool;
}

(* Rebuild the node from its backend.  Call with the volatile state
   already reset ([Node.reset_volatile] + [Node.reset_store], a fresh
   registry from [Node.configure_subs]): this fills the store, lineage,
   transport, sent-filter carry-over and subscription state back in,
   then installs a fresh WAL and immediately snapshots through it —
   compacting the just-replayed log so a second crash recovers from
   the snapshot alone and replays nothing twice. *)
let recover (node : Node.t) (opts : Options.t) ~backend =
  let r = Wal.recover ~backend in
  let seq_floor = ref 0 in
  let had_snapshot = ref false in
  let seen = ref [] in
  (match r.Wal.rec_snapshot with
  | None -> ()
  | Some payload -> (
      match decode_snapshot payload with
      | snap ->
          had_snapshot := true;
          seq_floor := snap.sn_next_seq;
          seen := snap.sn_seen;
          apply_snapshot node opts snap
      | exception Codec.Malformed _ -> ()));
  let replayed = ref 0 in
  (* the log tail was written after the last truncation, which is where
     the stream dictionary last reset: an empty mirror, grown in record
     order, resolves every dictionary-mode reference *)
  let replay_tab = Hashtbl.create 64 in
  List.iter
    (fun bytes ->
      match decode_record ~dict:replay_tab bytes with
      | record ->
          incr replayed;
          apply_record node opts ~seq_floor record
      | exception Codec.Malformed _ -> ())
    r.Wal.rec_records;
  (* the recovered dedup table keeps retransmitted-but-already-
     integrated messages from being re-processed; messages integrated
     after the snapshot lose their dedup keys, so their retransmissions
     re-process idempotently (subsumption dedup at integration) *)
  if Options.reliable opts then
    node.Node.relay <- Some (Relay.create ~next_seq:!seq_floor ~seen:!seen ());
  node.Node.wal_reserved <- !seq_floor;
  let wal = install node opts ~backend in
  Wal.snapshot_now wal;
  Stats.note_recovery node.Node.stats ~records:!replayed
    ~replayed_bytes:r.Wal.rec_replayed_bytes;
  {
    rv_records = !replayed;
    rv_replayed_bytes = r.Wal.rec_replayed_bytes;
    rv_truncated = r.Wal.rec_truncated;
    rv_had_snapshot = !had_snapshot;
  }

(* ---- store digest ---------------------------------------------------- *)

(* Order-insensitive because everything is sorted before hashing; two
   stores digest equal iff they hold the same relations with the same
   tuples (CRC collisions aside), whatever order delivered them. *)
let database_digest db =
  List.fold_left
    (fun crc rel ->
      let crc = Crc32.update crc rel in
      List.fold_left
        (fun crc tuple ->
          let w = Codec.writer ~initial:64 () in
          Payload.put_tuple w tuple;
          Crc32.update crc (Codec.contents w))
        crc (sorted_tuples db rel))
    0
    (List.sort String.compare (Database.rel_names db))
