module Peer_id = Codb_net.Peer_id

type entry = {
  e_dst : Peer_id.t;
  e_payload : Payload.t;  (* the wrapped [Seq] frame, resent verbatim *)
  mutable e_attempts : int;
  mutable e_settled : bool;
  e_on_settled : (ok:bool -> unit) option;
}

type t = {
  mutable next_seq : int;
  inflight : (int, entry) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
}

let create ?(next_seq = 0) ?(seen = []) () =
  let t = { next_seq; inflight = Hashtbl.create 16; seen = Hashtbl.create 64 } in
  List.iter (fun key -> Hashtbl.replace t.seen key ()) seen;
  t

let next_seq t = t.next_seq

let seen_keys t =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.seen [])

let fresh_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let register t ~seq entry = Hashtbl.replace t.inflight seq entry

let find t seq = Hashtbl.find_opt t.inflight seq

let settle t seq =
  match Hashtbl.find_opt t.inflight seq with
  | Some entry when not entry.e_settled ->
      entry.e_settled <- true;
      Hashtbl.remove t.inflight seq;
      Some entry
  | Some _ | None -> None

let inflight_count t = Hashtbl.length t.inflight

let seen_key ~src ~seq = Peer_id.to_string src ^ "#" ^ string_of_int seq

let mark_seen t ~src ~seq =
  let key = seen_key ~src ~seq in
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.add t.seen key ();
    true
  end

let abandon t =
  Hashtbl.iter (fun _ entry -> entry.e_settled <- true) t.inflight;
  Hashtbl.reset t.inflight
