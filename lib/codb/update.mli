(** The distributed global update algorithm (paper Section 3,
    [Franconi et al. 2004]).

    A global update materialises, at every node, all the data its
    acquaintances can contribute through the coordination rules,
    taking transitive (and possibly cyclic) dependencies between
    incoming and outgoing links into account.  After it terminates,
    local queries can be answered locally.

    Protocol summary, per node:

    - on first contact with an update id (request {e or} data — the
      request flood and the data stream race benignly): flood the
      request to every acquaintance, evaluate every incoming link on
      local data and stream the results to its importer, and close
      immediately the incoming links that depend on no outgoing link;
    - on data arriving through an outgoing link [O]: suppress
      duplicates (null-aware), instantiate fresh marked nulls for
      holes, insert; then recompute every incoming link dependent on
      [O] semi-naively on the delta, subtract the per-link sent cache
      and stream the remainder;
    - close an incoming link (and notify its importer) when every
      outgoing link relevant for it is closed; a node is closed when
      all its outgoing links are;
    - cyclic dependency components cannot close that way; global
      quiescence is detected with Dijkstra–Scholten diffusing
      computation termination (every protocol message is
      acknowledged; a node holds its first-contact acknowledgement
      until its own deficit reaches zero), upon which the initiator
      floods [Update_terminated], closing all remaining links.

    A locally inconsistent node (violated denial constraint) keeps
    routing and importing but never exports data — the paper's
    principle (d): local inconsistency does not propagate. *)

module Peer_id = Codb_net.Peer_id

val initiate : Runtime.t -> Ids.update_id -> unit
(** Start a global update at this node.  @raise Invalid_argument if
    the id was already used here. *)

val initiate_scoped : Runtime.t -> Ids.update_id -> rels:string list -> unit
(** Start a {e query-dependent} update: materialise, at this node,
    only the data reachable through coordination rules transitively
    relevant to the given local relations (typically the body
    relations of a query about to be asked).  Requests travel
    importer-to-source along exactly the relevant links; everything
    else — duplicate suppression, marked nulls, link closing,
    termination detection — behaves as in the global algorithm.
    Unlike query-time answering, the fetched data {e is} stored in the
    local databases along the way, and the propagation is not limited
    to simple paths, so cyclic rule systems reach their fix-point. *)

val handle : Runtime.t -> src:Peer_id.t -> bytes:int -> Payload.t -> unit
(** Process one update-protocol message ([Update_*] payloads only;
    others are ignored).  [bytes] is the wire size of the envelope,
    recorded by the statistics module. *)
