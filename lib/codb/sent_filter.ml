module Bloom = Codb_net.Bloom
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set

(* keyed by [Tuple.hash], not the polymorphic hash: probing the ring
   cache must not walk every boxed string of every tuple *)
module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

type bounded = {
  bloom : Bloom.t;
  ring : Tuple.t option array;  (* FIFO of the most recent distinct sends *)
  live : unit Tuple_tbl.t;  (* exact membership for ring occupants *)
  mutable head : int;
  mutable resends : int;
}

type t = Exact of { mutable set : Tuple_set.t } | Bounded of bounded

let create ~bloom_bits ~ring_capacity =
  if bloom_bits = 0 then Exact { set = Tuple_set.empty }
  else begin
    if ring_capacity < 1 then invalid_arg "Sent_filter.create: ring_capacity < 1";
    Bounded
      {
        bloom = Bloom.create ~bits:bloom_bits;
        ring = Array.make ring_capacity None;
        live = Tuple_tbl.create (min ring_capacity 1024);
        head = 0;
        resends = 0;
      }
  end

let already_sent t tuple =
  match t with
  | Exact { set } -> Tuple_set.mem tuple set
  | Bounded b ->
      (* The bloom check is the cheap fast path; only a positive consults
         the exact ring, and only a ring hit may suppress the send.  One
         [Tuple.hash] serves both probes. *)
      let h = Tuple.hash tuple in
      Bloom.mem_hash b.bloom h
      &&
      if Tuple_tbl.mem b.live tuple then true
      else begin
        b.resends <- b.resends + 1;
        false
      end

let note_sent t tuple =
  match t with
  | Exact e -> e.set <- Tuple_set.add tuple e.set
  | Bounded b ->
      if not (Tuple_tbl.mem b.live tuple) then begin
        (match b.ring.(b.head) with
        | Some evicted -> Tuple_tbl.remove b.live evicted
        | None -> ());
        b.ring.(b.head) <- Some tuple;
        Tuple_tbl.replace b.live tuple ();
        b.head <- (b.head + 1) mod Array.length b.ring;
        Bloom.add_hash b.bloom (Tuple.hash tuple)
      end

(* Snapshot view for the durability layer: what we can still prove was
   sent.  A Bounded filter only remembers its ring occupants — evicted
   tuples come back as "not sent" after recovery, costing a re-send the
   receiver dedups, never a drop. *)
let elements = function
  | Exact { set } -> Tuple_set.elements set
  | Bounded b ->
      List.sort Tuple.compare
        (Tuple_tbl.fold (fun tuple () acc -> tuple :: acc) b.live [])

let tracked = function
  | Exact { set } -> Tuple_set.cardinal set
  | Bounded b -> Tuple_tbl.length b.live

let possible_resends = function Exact _ -> 0 | Bounded b -> b.resends
