(** Per-node state of the query-answering diffusion.

    Each incoming [Query_request] spawns one {e instance}: a
    query-scoped overlay copy of the node's shared relations into
    which data fetched from acquaintances is integrated, plus the
    bookkeeping needed to stream new results upstream and to signal
    completion.  The node that posed the query runs a {e root}
    instance whose overlay is finally evaluated against the user
    query.  Instances are identified by the request reference chosen
    by the requester, so concurrent instances of the same query along
    different propagation paths never interfere (the paper's query
    labels guarantee the paths are simple, hence finitely many). *)

module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set
module Database = Codb_relalg.Database

type pending = {
  p_ref : string;  (** reference of the sub-request *)
  p_rule : string;  (** our outgoing link it executes *)
  mutable p_done : bool;
  mutable p_failed : bool;
      (** declared lost: the transport gave up on the request, or the
          failure deadline passed with no sign of life *)
  mutable p_touched : bool;
      (** data arrived since the deadline was last armed; the
          sub-request watchdog re-arms instead of expiring (deep
          sub-trees legitimately outlive one deadline window) *)
}

type kind =
  | Root of {
      query : Codb_cq.Query.t;
      mutable result : Tuple.t list option;  (** set on completion *)
      mutable streamed : Tuple_set.t;
          (** answers already reported to [on_answer] *)
      on_answer : (Tuple.t list -> unit) option;
          (** streaming callback: called with each batch of new
              answers as results arrive (the UI's "browse streaming
              results") *)
    }
  | Responder of {
      requester : Peer_id.t;
      in_rule : string;  (** the incoming link we serve *)
      label : Peer_id.t list;  (** path of the request, us included *)
      constraints : Codb_cq.Specialize.t;
          (** relevance bound the requester pushed down; applied to
              every outgoing tuple and re-specialized into our own
              fan-out *)
      mutable from_cache : bool;
          (** served from the responder-side (rule, constraints)
              cache: nothing to re-store on completion *)
    }

type t = {
  qst_query : Ids.query_id;
  qst_ref : string;  (** our own instance reference *)
  qst_kind : kind;
  qst_overlay : Database.t;
  mutable qst_pending : pending list;
  mutable qst_sent : Tuple_set.t;  (** responder: tuples already sent upstream *)
  mutable qst_closed : bool;
  mutable qst_contacted : Peer_id.t list;
      (** acquaintances we sent sub-requests to; on a root instance
          these are the cache-stamp sources besides the node itself *)
  mutable qst_complete : bool;
      (** no sub-request failed below us (transitively); a responder
          forwards this in [Query_done], the root records it on the
          query outcome.  Partial answers are never cached. *)
  mutable qst_unacked : int;
      (** responder: [Query_data] messages whose transport fate is
          unknown; completion waits for zero so [Query_done] cannot
          claim completeness while data may still be lost *)
}

val create :
  query_id:Ids.query_id -> ref_:string -> kind:kind -> overlay:Database.t -> t

val add_pending : t -> ref_:string -> rule:string -> unit

val note_contacted : t -> Peer_id.t -> unit

val find_pending : t -> string -> pending option

val mark_done : t -> ref_:string -> unit

val mark_failed : t -> ref_:string -> bool
(** Mark a sub-request failed; [true] iff it was neither done nor
    already failed (the caller reacts only the first time). *)

val all_done : t -> bool
(** Every sub-request answered or failed. *)

val unsent : t -> Tuple.t list -> Tuple.t list
(** Filter out tuples already sent upstream and record the rest as
    sent. *)
