(** Network generators for the demo experiments: "we will measure the
    performance of various networks arranged in different topologies"
    (paper, Section 4).

    Every generated network uses one shared relation shape,
    [data(k: int, v: string)], at every node, with one coordination
    rule per directed edge (importer, source).  The rule is a plain
    schema translation by default; fractions of the rules can be given
    existential heads (projecting [v] away and re-introducing it as a
    marked null) and body comparison predicates, which is what the
    ablation experiments vary. *)

module Config = Codb_cq.Config

type shape =
  | Chain  (** node [i] imports from [i+1]; all data flows to node 0 *)
  | Ring  (** chain plus an edge closing the cycle *)
  | Star_in  (** the centre (node 0) imports from every leaf *)
  | Star_out  (** every leaf imports from the centre *)
  | Binary_tree  (** parents import from their children; flows to the root *)
  | Grid of int * int  (** rows × cols; import from right and lower neighbours *)
  | Random_graph of float  (** each ordered pair is an edge with probability p *)
  | Clique  (** every ordered pair is an edge *)

type params = {
  tuples_per_node : int;
  profile : Codb_workload.Datagen.profile;
  existential_frac : float;
      (** probability that a rule head projects [v] into an
          existential variable *)
  comparison_frac : float;
      (** probability that a rule body carries a [k <= bound]
          comparison *)
  connected : bool;
      (** add a chain backbone under [Random_graph] so the network is
          weakly connected *)
}

val default_params : params

val shape_name : shape -> string

val edges : ?rng:Codb_workload.Rng.t -> shape -> n:int -> (int * int) list
(** Directed edges as (importer, source) index pairs.  [Random_graph]
    requires [rng].  @raise Invalid_argument on nonsensical sizes. *)

val node_name : int -> string
(** ["n<i>"]. *)

val data_relation : Codb_relalg.Schema.t
(** The shared [data(k: int, v: string)] schema. *)

val generate : ?params:params -> seed:int -> shape -> n:int -> Config.t
(** A full network description: [n] nodes with random base facts and
    one rule per edge.  The result always passes
    {!Config.validate}. *)

val rules_only : Config.t -> Config.t
(** Strip facts (keep nodes and rules) — the shape of the super-peer's
    broadcast rules file. *)
