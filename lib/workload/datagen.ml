module Value = Codb_relalg.Value
module Schema = Codb_relalg.Schema
module Relation = Codb_relalg.Relation

type profile = { domain_size : int; skew : float }

let default_profile = { domain_size = 50; skew = 0.0 }

let rank rng profile =
  if profile.skew > 0.0 then Rng.zipf rng ~n:profile.domain_size ~s:profile.skew
  else 1 + Rng.int rng profile.domain_size

let value rng profile = function
  | Value.Tint -> Value.Int (rank rng profile)
  | Value.Tfloat -> Value.Float (float_of_int (rank rng profile) /. 2.0)
  | Value.Tstring -> Value.Str (Printf.sprintf "v%d" (rank rng profile))
  | Value.Tbool -> Value.Bool (Rng.bool rng 0.5)

let tuple rng profile schema =
  Array.of_list
    (List.map (fun a -> value rng profile a.Schema.attr_ty) schema.Schema.attrs)

let tuples rng profile schema ~count = List.init count (fun _ -> tuple rng profile schema)

let distinct_tuples rng profile schema ~count =
  let seen = ref Relation.Tuple_set.empty in
  let budget = count * 20 in
  let rec loop tries acc n =
    if n >= count || tries >= budget then List.rev acc
    else
      let t = tuple rng profile schema in
      if Relation.Tuple_set.mem t !seen then loop (tries + 1) acc n
      else begin
        seen := Relation.Tuple_set.add t !seen;
        loop (tries + 1) (t :: acc) (n + 1)
      end
  in
  loop 0 [] 0
