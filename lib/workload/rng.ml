type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int rng bound

let int_range rng lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int rng (hi - lo + 1)

let float rng bound = Random.State.float rng bound

let bool rng p = Random.State.float rng 1.0 < p

let pick rng = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int rng (List.length l))

let shuffle rng l =
  let tagged = List.map (fun x -> (Random.State.bits rng, x)) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) tagged)

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = Random.State.float rng total in
  let rec walk i acc =
    if i >= n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if target < acc then i + 1 else walk (i + 1) acc
  in
  walk 0 0.0
