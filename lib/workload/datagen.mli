(** Synthetic data for experiments: random tuples conforming to a
    schema, with controllable domain size and skew.

    Small domains force joins to produce matches and duplicates to
    occur, which is what exercises the update algorithm's duplicate
    suppression; large domains produce mostly-disjoint data. *)

type profile = {
  domain_size : int;  (** values per attribute domain *)
  skew : float;  (** Zipf exponent; [0.] is uniform *)
}

val default_profile : profile

val value : Rng.t -> profile -> Codb_relalg.Value.ty -> Codb_relalg.Value.t

val tuple : Rng.t -> profile -> Codb_relalg.Schema.t -> Codb_relalg.Tuple.t

val tuples : Rng.t -> profile -> Codb_relalg.Schema.t -> count:int -> Codb_relalg.Tuple.t list
(** [count] random tuples (duplicates possible — set semantics will
    collapse them on insertion). *)

val distinct_tuples :
  Rng.t -> profile -> Codb_relalg.Schema.t -> count:int -> Codb_relalg.Tuple.t list
(** Up to [count] distinct tuples (fewer when the domain is too
    small). *)
