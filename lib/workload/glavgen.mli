(** Heterogeneous GLAV workloads.

    Where {!Codb_core.Topology.generate} builds plain schema
    translations over a single relation, this generator exercises the
    full rule language on a three-relation schema at every node —
    [fact0(k, v)], [fact1(k, v)] and [link(k, j)] — with a mix of rule
    kinds per edge:

    - plain copies of one relation;
    - a genuine two-atom {e join} ([fact0(x, z) <- link(x, y),
      fact0(y, z)]: one hop through the link graph);
    - an existential {e projection} ([fact1(x, w) <- fact0(x, y)] with
      [w] existential — marked nulls at the importer);
    - a {e filtered} copy with a comparison predicate.

    The topology is supplied as an edge list (importer, source), so it
    composes with {!Codb_core.Topology.edges} without a dependency
    cycle. *)

type spec = {
  tuples_per_relation : int;
  join_frac : float;  (** probability of a join rule *)
  existential_frac : float;  (** else, probability of a projection rule *)
  comparison_frac : float;  (** else, probability of a filtered copy *)
  rules_per_edge : int;
  profile : Datagen.profile;
}

val default_spec : spec

val node_name : int -> string
(** ["n<i>"], matching {!Codb_core.Topology.node_name}. *)

val relations : Codb_relalg.Schema.t list
(** The shared three-relation schema. *)

val generate :
  ?spec:spec -> seed:int -> edges:(int * int) list -> n:int -> unit -> Codb_cq.Config.t
(** Always passes {!Codb_cq.Config.validate}. *)
