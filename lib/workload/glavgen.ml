module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom
module Term = Codb_cq.Term
module Schema = Codb_relalg.Schema
module Value = Codb_relalg.Value

type spec = {
  tuples_per_relation : int;
  join_frac : float;
  existential_frac : float;
  comparison_frac : float;
  rules_per_edge : int;
  profile : Datagen.profile;
}

let default_spec =
  {
    tuples_per_relation = 25;
    join_frac = 0.3;
    existential_frac = 0.2;
    comparison_frac = 0.2;
    rules_per_edge = 1;
    profile = Datagen.default_profile;
  }

let node_name i = Printf.sprintf "n%d" i

let fact0 = Schema.make "fact0" [ ("k", Value.Tint); ("v", Value.Tint) ]

let fact1 = Schema.make "fact1" [ ("k", Value.Tint); ("v", Value.Tint) ]

let link = Schema.make "link" [ ("k", Value.Tint); ("j", Value.Tint) ]

let relations = [ fact0; fact1; link ]

type rule_kind = Copy of string | Join | Project_exist | Filtered

let pick_kind rng spec =
  if Rng.bool rng spec.join_frac then Join
  else if Rng.bool rng spec.existential_frac then Project_exist
  else if Rng.bool rng spec.comparison_frac then Filtered
  else Copy (Rng.pick rng [ "fact0"; "fact1"; "link" ])

let x = Term.Var "x"

let y = Term.Var "y"

let z = Term.Var "z"

let w = Term.Var "w"

let rule_query rng spec kind =
  match kind with
  | Copy rel ->
      Query.make ~head:(Atom.make rel [ x; y ]) ~body:[ Atom.make rel [ x; y ] ] ()
  | Join ->
      (* one hop through the link graph: a genuine two-atom join *)
      Query.make
        ~head:(Atom.make "fact0" [ x; z ])
        ~body:[ Atom.make "link" [ x; y ]; Atom.make "fact0" [ y; z ] ]
        ()
  | Project_exist ->
      (* the source's fact0 keys exist at the importer with an unknown
         value: a marked null *)
      Query.make ~head:(Atom.make "fact1" [ x; w ]) ~body:[ Atom.make "fact0" [ x; y ] ] ()
  | Filtered ->
      let bound = max 1 (spec.profile.Datagen.domain_size / 2) in
      ignore rng;
      Query.make
        ~head:(Atom.make "fact0" [ x; y ])
        ~body:[ Atom.make "fact0" [ x; y ] ]
        ~comparisons:[ { Query.left = y; op = Query.Le; right = Term.Cst (Value.Int bound) } ]
        ()

let generate ?(spec = default_spec) ~seed ~edges ~n () =
  let rng = Rng.make ~seed in
  let make_node i =
    let facts =
      List.concat_map
        (fun schema ->
          List.map
            (fun t -> (schema.Schema.rel_name, t))
            (Datagen.distinct_tuples rng spec.profile schema
               ~count:spec.tuples_per_relation))
        relations
    in
    {
      Config.node_name = node_name i;
      relations;
      facts;
      mediator = false;
      constraints = [];
    }
  in
  let edge_rules (importer, source) =
    List.init spec.rules_per_edge (fun k ->
        let kind = pick_kind rng spec in
        {
          Config.rule_id = Printf.sprintf "g_%d_%d_%d" importer source k;
          importer = node_name importer;
          source = node_name source;
          rule_query = rule_query rng spec kind;
        })
  in
  {
    Config.nodes = List.init n make_node;
    rules = List.concat_map edge_rules edges;
  }
