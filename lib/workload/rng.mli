(** Seeded pseudo-random generation for workloads and property tests.

    A thin wrapper over [Random.State] so that every generator in the
    benchmark harness is reproducible from an integer seed and never
    touches the global generator. *)

type t

val make : seed:int -> t

val int : t -> int -> int
(** [int rng bound] in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range rng lo hi] inclusive of both ends. *)

val float : t -> float -> float

val bool : t -> float -> bool
(** [bool rng p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list

val zipf : t -> n:int -> s:float -> int
(** A rank in [\[1, n\]] drawn from a Zipf distribution with exponent
    [s] (inverse-CDF over precomputed weights; [s = 0.] is uniform). *)
