(** Minimal CSV import/export for relation contents.

    The format is deliberately simple: one tuple per line, fields
    separated by commas, strings quoted with double quotes (doubled
    quotes escape a quote).  Values are parsed according to the
    relation schema.  Marked nulls are written as [#Nid@rule] and read
    back preserving their identifier, so a dump/load round-trip is
    faithful. *)

exception Parse_error of { line : int; message : string }

val parse_line : Schema.t -> int -> string -> Tuple.t
(** Parse one CSV line against a schema.  @raise Parse_error. *)

val load_string : Schema.t -> string -> Tuple.t list
(** Parse a whole CSV document (blank lines and [#]-comments are
    skipped).  @raise Parse_error. *)

val load_into : Database.t -> string -> string -> int
(** [load_into db rel_name csv] inserts the parsed tuples and returns
    the number of new tuples. *)

val dump : Relation.t -> string

val dump_database : Database.t -> string
(** All relations, each preceded by a [# relation <name>] comment. *)

val load_database : Database.t -> string -> int
(** Parse a {!dump_database} document back into an existing database
    (relations must already be declared; unknown sections raise
    {!Parse_error}).  Returns the number of new tuples.  Together with
    the faithful marked-null round-trip this provides full
    store persistence. *)
