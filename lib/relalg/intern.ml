(* Global value interning: every Value.t packs into one tagged OCaml
   int, so equality is integer equality, hashing never walks a string,
   and the columnar relation stores tuples as flat int arrays.

   Packed layout: the low 3 bits are a constructor tag, the upper bits
   the payload — either the value itself (small ints, bools, holes) or
   a slot in one of the global side tables (strings, floats, marked
   nulls, out-of-range ints and holes).  Tables only ever grow; the
   process-global lifetime mirrors [Value.fresh_null]'s global null
   counter and is the price of O(1) comparisons everywhere.

   Invariants:
   - [pack] is injective up to [Value.compare]-equality: two values
     pack to the same int iff [Value.compare] calls them equal.  In
     particular marked nulls intern by [null_id] alone (the rule tag
     is provenance, not identity — exactly what [Value.compare]
     implements), floats intern by their canonical bit pattern (all
     NaNs collapse, -0. collapses into +0.), and ints that do not fit
     the 60-bit payload fall back to an overflow table.
   - [unpack] returns a canonical boxed value: unpacking the same
     packed int twice yields the same physical object, so boxed
     values that went through the intern table compare with [==]
     before any structural walk. *)

let tag_bits = 3

let tag_mask = 7

(* constructor tags; [rank_of_tag] below must mirror
   [Value.constructor_rank] *)
let tag_int = 0

let tag_bool = 1

let tag_hole = 2

let tag_str = 3

let tag_float = 4

let tag_null = 5

let tag_bigint = 6

let tag_bighole = 7

let max_payload = max_int asr tag_bits

let min_payload = min_int asr tag_bits

let fits n = n >= min_payload && n <= max_payload

type packed = int

let tag p = p land tag_mask

let payload p = p asr tag_bits

let make_packed ~tag payload = (payload lsl tag_bits) lor tag

(* ---- growable side tables ------------------------------------------- *)

type 'a vec = { mutable data : 'a array; mutable len : int }

let vec_create () = { data = [||]; len = 0 }

let vec_get v i = v.data.(i)

let vec_push v x =
  if v.len = Array.length v.data then begin
    let cap = max 64 (2 * Array.length v.data) in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

(* Each table maps a raw key to a slot; the slot stores the canonical
   boxed value, which both [unpack] and the packed comparison read. *)
let str_ids : (string, int) Hashtbl.t = Hashtbl.create 1024

let str_vals : Value.t vec = vec_create ()

let float_ids : (float, int) Hashtbl.t = Hashtbl.create 64

let float_vals : Value.t vec = vec_create ()

let null_ids : (int, int) Hashtbl.t = Hashtbl.create 256

let null_vals : Value.t vec = vec_create ()

let bigint_ids : (int, int) Hashtbl.t = Hashtbl.create 16

let bigint_vals : Value.t vec = vec_create ()

let bighole_ids : (int, int) Hashtbl.t = Hashtbl.create 16

let bighole_vals : Value.t vec = vec_create ()

(* Canonical boxed values for payload-carrying tags (small ints,
   bools, holes), memoised per packed int.  The memo is {e per
   domain}: [unpack] writes it on a read path, and worker domains of
   the parallel runtime unpack concurrently — a private table per
   domain keeps that write race-free without a lock on the hottest
   boxing path.  (The side tables above stay process-global: during a
   parallel batch they are read-only, enforced by the minting
   freeze.) *)
let canon_misc_key : (int, Value.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let intern_slot ids vals key v =
  match Hashtbl.find_opt ids key with
  | Some slot -> slot
  | None ->
      if Value.minting_frozen () then
        invalid_arg "Intern: new value interned while minting is frozen";
      let slot = vec_push vals v in
      Hashtbl.add ids key slot;
      slot

(* All NaNs are one value under [Value.compare], as are -0. and +0.:
   collapse them before keying the float table so packed equality
   agrees with boxed equality. *)
let canonical_float f = if f <> f then Float.nan else if f = 0. then 0. else f

let pack = function
  | Value.Int n ->
      if fits n then make_packed ~tag:tag_int n
      else make_packed ~tag:tag_bigint (intern_slot bigint_ids bigint_vals n (Value.Int n))
  | Value.Bool b -> make_packed ~tag:tag_bool (if b then 1 else 0)
  | Value.Hole i ->
      if fits i then make_packed ~tag:tag_hole i
      else
        make_packed ~tag:tag_bighole (intern_slot bighole_ids bighole_vals i (Value.Hole i))
  | Value.Str s -> make_packed ~tag:tag_str (intern_slot str_ids str_vals s (Value.Str s))
  | Value.Float f ->
      let f = canonical_float f in
      make_packed ~tag:tag_float (intern_slot float_ids float_vals f (Value.Float f))
  | Value.Null { Value.null_id; _ } as v ->
      make_packed ~tag:tag_null (intern_slot null_ids null_vals null_id v)

let unpack p =
  match tag p with
  | 3 (* tag_str *) -> vec_get str_vals (payload p)
  | 4 (* tag_float *) -> vec_get float_vals (payload p)
  | 5 (* tag_null *) -> vec_get null_vals (payload p)
  | 6 (* tag_bigint *) -> vec_get bigint_vals (payload p)
  | 7 (* tag_bighole *) -> vec_get bighole_vals (payload p)
  | _ -> (
      let canon_misc = Domain.DLS.get canon_misc_key in
      match Hashtbl.find_opt canon_misc p with
      | Some v -> v
      | None ->
          let v =
            match tag p with
            | 0 (* tag_int *) -> Value.Int (payload p)
            | 1 (* tag_bool *) -> Value.Bool (payload p <> 0)
            | _ (* tag_hole *) -> Value.Hole (payload p)
          in
          Hashtbl.add canon_misc p v;
          v)

let canonical v = unpack (pack v)

let equal (a : packed) (b : packed) = a = b

(* must mirror Value.constructor_rank: Int 0, Float 1, Str 2, Bool 3,
   Null 4, Hole 5 *)
let rank p =
  match tag p with
  | 0 | 6 -> 0
  | 4 -> 1
  | 3 -> 2
  | 1 -> 3
  | 5 -> 4
  | _ -> 5

let int_value p = if tag p = tag_int then payload p else
  match vec_get bigint_vals (payload p) with Value.Int n -> n | _ -> assert false

let hole_value p = if tag p = tag_hole then payload p else
  match vec_get bighole_vals (payload p) with Value.Hole i -> i | _ -> assert false

(* Allocation-free total order, consistent with [Value.compare]. *)
let compare a b =
  if a = b then 0
  else
    let ra = rank a and rb = rank b in
    if ra <> rb then Stdlib.compare ra rb
    else
      match ra with
      | 0 -> Int.compare (int_value a) (int_value b)
      | 1 -> (
          match (vec_get float_vals (payload a), vec_get float_vals (payload b)) with
          | Value.Float x, Value.Float y -> Float.compare x y
          | _ -> assert false)
      | 2 -> (
          match (vec_get str_vals (payload a), vec_get str_vals (payload b)) with
          | Value.Str x, Value.Str y -> String.compare x y
          | _ -> assert false)
      | 3 -> Int.compare (payload a) (payload b)
      | 4 -> (
          match (vec_get null_vals (payload a), vec_get null_vals (payload b)) with
          | Value.Null x, Value.Null y -> Int.compare x.Value.null_id y.Value.null_id
          | _ -> assert false)
      | _ -> Int.compare (hole_value a) (hole_value b)

let is_hole p = tag p = tag_hole || tag p = tag_bighole

let is_null p = tag p = tag_null

(* Fibonacci-style avalanche so sequential table slots spread across
   hash buckets; stays non-negative for direct use as a bucket key. *)
let hash (p : packed) =
  let h = p lxor (p lsr 33) in
  let h = h * 0x27d4eb2f165667c5 in
  (h lxor (h lsr 29)) land max_int

(* [Value.reset_null_counter] reissues null ids, so ids interned
   before the reset must not shadow the nulls of the new epoch: drop
   the id->slot map but keep the slot array, so packed nulls minted
   before the reset still unpack (they are a different epoch and no
   longer compare equal to new nulls with the same id — exactly the
   semantics of resetting the generator). *)
let () = Value.on_reset_null_counter (fun () -> Hashtbl.reset null_ids)

let interned_strings () = str_vals.len

let interned_values () =
  str_vals.len + float_vals.len + null_vals.len + bigint_vals.len + bighole_vals.len
