type t = {
  order : string list;  (* declaration order, for stable printing *)
  rels : (string, Relation.t) Hashtbl.t;
}

let create schemas =
  let rels = Hashtbl.create 16 in
  let add_schema s =
    let name = s.Schema.rel_name in
    if Hashtbl.mem rels name then
      invalid_arg (Printf.sprintf "Database.create: duplicate relation %s" name);
    Hashtbl.add rels name (Relation.create s)
  in
  List.iter add_schema schemas;
  { order = List.map (fun s -> s.Schema.rel_name) schemas; rels }

let relation db name =
  match Hashtbl.find_opt db.rels name with
  | Some r -> r
  | None -> raise Not_found

let relation_opt db name = Hashtbl.find_opt db.rels name

let has_relation db name = Hashtbl.mem db.rels name

let rel_names db = db.order

let schema db = List.map (fun name -> Relation.schema (relation db name)) db.order

let insert db name t = Relation.insert (relation db name) t

let insert_all db name ts = Relation.insert_all (relation db name) ts

let tuples db name = Relation.to_list (relation db name)

let cardinal db =
  List.fold_left (fun acc name -> acc + Relation.cardinal (relation db name)) 0 db.order

let size_bytes db =
  List.fold_left (fun acc name -> acc + Relation.size_bytes (relation db name)) 0 db.order

let copy db =
  let rels = Hashtbl.create 16 in
  List.iter (fun name -> Hashtbl.add rels name (Relation.copy (relation db name))) db.order;
  { order = db.order; rels }

let clear db = List.iter (fun name -> Relation.clear (relation db name)) db.order

let equal_contents db1 db2 =
  let names1 = List.sort String.compare db1.order
  and names2 = List.sort String.compare db2.order in
  List.equal String.equal names1 names2
  && List.for_all
       (fun name -> Relation.equal_contents (relation db1 name) (relation db2 name))
       names1

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut Relation.pp)
    (List.map (relation db) db.order)
