(** Relation schemas: a relation name plus a list of typed attributes.

    A node's Database Schema (DBS in the paper's architecture) is the
    list of relation schemas it shares with the network; it must be
    present even on mediator nodes that have no local database. *)

type attr = { attr_name : string; attr_ty : Value.ty }

type t = { rel_name : string; attrs : attr list }

val make : string -> (string * Value.ty) list -> t
(** [make name attrs] builds a schema.
    @raise Invalid_argument on duplicate attribute names or empty
    attribute list. *)

val arity : t -> int

val attr_names : t -> string list

val position : t -> string -> int option
(** Position of an attribute by name. *)

val conforms : t -> Tuple.t -> bool
(** Arity matches and every value inhabits its attribute type (marked
    nulls and holes conform to every type). *)

val equal : t -> t -> bool

val pp : t Fmt.t

val to_string : t -> string
