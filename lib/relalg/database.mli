(** A database instance: a collection of relations indexed by name.

    This plays the role of the paper's Local Database (LDB) and also of
    the temporary stores maintained by the Wrapper on mediator nodes
    and by the query engine's per-query overlays. *)

type t

val create : Schema.t list -> t
(** Empty database over the given relation schemas.
    @raise Invalid_argument on duplicate relation names. *)

val schema : t -> Schema.t list
(** The relation schemas, in declaration order. *)

val relation : t -> string -> Relation.t
(** @raise Not_found if no relation has that name. *)

val relation_opt : t -> string -> Relation.t option

val has_relation : t -> string -> bool

val rel_names : t -> string list

val insert : t -> string -> Tuple.t -> bool
(** [true] iff the tuple was new.  @raise Not_found on unknown
    relation; @raise Invalid_argument on schema mismatch. *)

val insert_all : t -> string -> Tuple.t list -> Tuple.t list
(** Returns the tuples actually inserted (the delta). *)

val tuples : t -> string -> Tuple.t list

val cardinal : t -> int
(** Total number of tuples across all relations. *)

val size_bytes : t -> int

val copy : t -> t
(** Deep copy (relations are duplicated, contents shared
    persistently). *)

val clear : t -> unit

val equal_contents : t -> t -> bool
(** Same relation names and identical tuple sets in each. *)

val pp : t Fmt.t
