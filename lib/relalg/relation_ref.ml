(* The seed boxed storage engine, preserved verbatim: an ordered
   tuple set plus hash indexes keyed by boxed value lists.  It is the
   differential-testing oracle for the columnar [Relation] (they must
   agree on every operation) and the boxed baseline of the E19 scale
   bench.  Production code uses [Relation]. *)

module Tuple_set = Set.Make (Tuple)

(* Hash indexes are keyed by a sorted list of column positions; the
   single-column index on column [c] is the index on [[c]].  Indexes
   are built lazily on the first probe and then maintained in place by
   every mutation, so the update fix-point no longer rebuilds them
   from scratch after each delta round. *)
type index = (Value.t list, Tuple.t list) Hashtbl.t

type t = {
  schema : Schema.t;
  mutable tuples : Tuple_set.t;
  mutable card : int;  (* O(1) cardinality for the planner *)
  indexes : (int list, index) Hashtbl.t;
  mutable index_budget : int;
  (* per-column distinct-value counters: built on the first
     [distinct_count] call, maintained incrementally afterwards *)
  col_counts : (Value.t, int) Hashtbl.t option array;
}

let default_index_budget = 16

let create schema =
  {
    schema;
    tuples = Tuple_set.empty;
    card = 0;
    indexes = Hashtbl.create 4;
    index_budget = default_index_budget;
    col_counts = Array.make (Schema.arity schema) None;
  }

let schema r = r.schema

let name r = r.schema.Schema.rel_name

let cardinal r = r.card

let is_empty r = r.card = 0

let mem r t = Tuple_set.mem t r.tuples

let set_index_budget r budget = r.index_budget <- max 0 budget

let index_budget r = r.index_budget

let index_count r = Hashtbl.length r.indexes

let key_of cols t = List.map (fun c -> t.(c)) cols

let index_add index key t =
  let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
  Hashtbl.replace index key (t :: existing)

let index_remove index key t =
  match Hashtbl.find_opt index key with
  | None -> ()
  | Some bucket -> (
      match List.filter (fun stored -> not (Tuple.equal stored t)) bucket with
      | [] -> Hashtbl.remove index key
      | bucket' -> Hashtbl.replace index key bucket')

(* Incremental maintenance hooks: called with every tuple that
   actually enters or leaves the set. *)
let note_insert r t =
  r.card <- r.card + 1;
  Hashtbl.iter (fun cols index -> index_add index (key_of cols t) t) r.indexes;
  Array.iteri
    (fun col counts ->
      match counts with
      | None -> ()
      | Some counts ->
          let v = t.(col) in
          let n = Option.value ~default:0 (Hashtbl.find_opt counts v) in
          Hashtbl.replace counts v (n + 1))
    r.col_counts

let note_remove r t =
  r.card <- r.card - 1;
  Hashtbl.iter (fun cols index -> index_remove index (key_of cols t) t) r.indexes;
  Array.iteri
    (fun col counts ->
      match counts with
      | None -> ()
      | Some counts -> (
          let v = t.(col) in
          match Hashtbl.find_opt counts v with
          | Some n when n > 1 -> Hashtbl.replace counts v (n - 1)
          | Some _ -> Hashtbl.remove counts v
          | None -> ()))
    r.col_counts

let reset_derived r =
  Hashtbl.reset r.indexes;
  Array.fill r.col_counts 0 (Array.length r.col_counts) None

let check_insertable r t =
  if Tuple.has_hole t then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple with holes in %s (instantiate first)"
         (name r));
  if not (Schema.conforms r.schema t) then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple %s does not conform to %s"
         (Tuple.to_string t)
         (Schema.to_string r.schema))

let insert r t =
  check_insertable r t;
  if Tuple_set.mem t r.tuples then false
  else begin
    r.tuples <- Tuple_set.add t r.tuples;
    note_insert r t;
    true
  end

let insert_all r ts = List.filter (insert r) ts

let remove r t =
  if Tuple_set.mem t r.tuples then begin
    r.tuples <- Tuple_set.remove t r.tuples;
    note_remove r t;
    true
  end
  else false

let clear r =
  r.tuples <- Tuple_set.empty;
  r.card <- 0;
  reset_derived r

let to_list r = Tuple_set.elements r.tuples

let to_seq r = Tuple_set.to_seq r.tuples

let fold f r init = Tuple_set.fold f r.tuples init

let iter f r = Tuple_set.iter f r.tuples

let copy r =
  {
    r with
    tuples = r.tuples;
    indexes = Hashtbl.create 4;
    col_counts = Array.make (Schema.arity r.schema) None;
  }

let equal_contents r1 r2 = Tuple_set.equal r1.tuples r2.tuples

let size_bytes r = fold (fun t acc -> acc + Tuple.size_bytes t) r 0

let check_col r col =
  if col < 0 || col >= Schema.arity r.schema then
    invalid_arg
      (Printf.sprintf "Relation.lookup: column %d out of range for %s" col (name r))

let build_index r cols =
  let index = Hashtbl.create (max 16 r.card) in
  Tuple_set.iter (fun t -> index_add index (key_of cols t) t) r.tuples;
  Hashtbl.replace r.indexes cols index;
  index

(* The index on [cols], existing or freshly built — [None] when the
   per-relation budget is exhausted (callers fall back to a scan). *)
let index_for r cols =
  match Hashtbl.find_opt r.indexes cols with
  | Some index -> Some index
  | None ->
      if Hashtbl.length r.indexes < r.index_budget then Some (build_index r cols)
      else None

let scan_filter r bindings =
  Tuple_set.fold
    (fun t acc ->
      if List.for_all (fun (col, v) -> Value.equal t.(col) v) bindings then t :: acc
      else acc)
    r.tuples []

let lookup r ~col value =
  check_col r col;
  match index_for r [ col ] with
  | Some index -> Option.value ~default:[] (Hashtbl.find_opt index [ value ])
  | None -> scan_filter r [ (col, value) ]

(* Normalise a probe: sort by column, drop duplicate bindings, detect
   contradictions ([None] = provably empty). *)
let normalise_bindings bindings =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) bindings in
  let rec dedup = function
    | (c1, v1) :: ((c2, v2) :: _ as rest) when c1 = c2 ->
        if Value.equal v1 v2 then dedup rest else None
    | b :: rest -> Option.map (fun tail -> b :: tail) (dedup rest)
    | [] -> Some []
  in
  dedup sorted

let lookup_cols r bindings =
  List.iter (fun (col, _) -> check_col r col) bindings;
  match normalise_bindings bindings with
  | None -> []
  | Some [] -> to_list r
  | Some bindings -> (
      let cols = List.map fst bindings in
      match index_for r cols with
      | Some index ->
          Option.value ~default:[] (Hashtbl.find_opt index (List.map snd bindings))
      | None -> (
          (* budget exhausted: probe an already-built single-column
             index if one covers a bound column, filter the rest *)
          let covered =
            List.find_opt (fun (col, _) -> Hashtbl.mem r.indexes [ col ]) bindings
          in
          match covered with
          | Some (col, v) ->
              let rest = List.filter (fun (c, _) -> c <> col) bindings in
              List.filter
                (fun t -> List.for_all (fun (c, v') -> Value.equal t.(c) v') rest)
                (lookup r ~col v)
          | None -> scan_filter r bindings))

(* Subsumption probe.  A stored tuple (hole-free by
   [check_insertable]) subsumes [incoming] iff it agrees with every
   non-hole position, so the candidates are exactly the bucket of the
   ground columns: probe it through [lookup_cols] instead of scanning
   all [card] tuples.  All-hole tuples are subsumed by anything, and a
   non-conforming arity can match nothing. *)
let subsumed r incoming =
  if not (Tuple.has_hole incoming) then Tuple_set.mem incoming r.tuples
  else if Array.length incoming <> Schema.arity r.schema then
    Tuple_set.exists (fun stored -> Tuple.subsumes stored incoming) r.tuples
  else begin
    let ground = ref [] in
    Array.iteri
      (fun col v -> if not (Value.is_hole v) then ground := (col, v) :: !ground)
      incoming;
    match !ground with
    | [] -> not (is_empty r)
    | bindings -> lookup_cols r bindings <> []
  end

let distinct_count r ~col =
  check_col r col;
  match r.col_counts.(col) with
  | Some counts -> Hashtbl.length counts
  | None -> (
      (* a single-column index already knows the answer for free *)
      match Hashtbl.find_opt r.indexes [ col ] with
      | Some index -> Hashtbl.length index
      | None ->
          let counts = Hashtbl.create (max 16 (r.card / 4)) in
          Tuple_set.iter
            (fun t ->
              let v = t.(col) in
              let n = Option.value ~default:0 (Hashtbl.find_opt counts v) in
              Hashtbl.replace counts v (n + 1))
            r.tuples;
          r.col_counts.(col) <- Some counts;
          Hashtbl.length counts)

let pp ppf r =
  Fmt.pf ppf "@[<v 2>%s [%d tuples]%a@]" (name r) (cardinal r)
    Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf "@,%a" Tuple.pp t))
    (to_list r)
