(** A relation instance: a set of tuples conforming to a schema.

    Set semantics throughout, as required by the update algorithm's
    duplicate-suppression step.  Mutating operations return the tuples
    that were actually new, which is exactly the delta the algorithm
    propagates further.

    Storage is {e columnar over interned values}: each tuple is a row
    of packed ints (one per column, see {!Intern}) held in growable
    column chunks with a presence bitmap, so equality is integer
    equality and probing never walks a boxed string.  Boxed
    {!Tuple.t} views are materialised lazily — one canonical tuple
    per row, memoised — and every tuple this module hands out is
    canonical in the sense of {!Tuple.canonical}.

    Equality probes are served from hash indexes keyed by packed
    column values (row-id buckets).  Indexes are built lazily on the
    first probe and then maintained {e incrementally} by every
    insert/remove, so repeated probe/mutate cycles (the update
    fix-point) never rebuild them from scratch.  The number of
    distinct indexes per relation is bounded by a budget; past it,
    probes degrade to filtered scans.  The relation also keeps cheap
    statistics — O(1) cardinality and per-column distinct-value
    counts — for the cost-based query planner.

    [copy] is O(columns), not O(tuples): full column chunks are
    write-once and shared with the copy, which makes the per-query
    database overlays in the query engine cheap even at millions of
    tuples. *)

module Tuple_set : Set.S with type elt = Tuple.t

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val name : t -> string

val cardinal : t -> int
(** O(1): maintained incrementally, not recounted. *)

val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val insert : t -> Tuple.t -> bool
(** [insert r t] adds [t]; [true] iff [t] was not already present.
    Existing hash indexes and column statistics are updated in place.
    @raise Invalid_argument if [t] does not conform to the schema or
    contains holes (holes are a wire-only representation). *)

val insert_all : t -> Tuple.t list -> Tuple.t list
(** Insert many tuples; returns the sub-list that was actually new, in
    the input order. *)

val subsumed : t -> Tuple.t -> bool
(** Null-aware membership: is the (possibly hole-carrying) incoming
    tuple subsumed by some stored tuple?  See {!Tuple.subsumes}.
    Served by probing the hash index on the tuple's ground (non-hole)
    columns, so the cost is one bucket, not one scan; only an all-hole
    tuple degenerates to an emptiness check. *)

val lookup : t -> col:int -> Value.t -> Tuple.t list
(** Tuples whose [col]-th attribute equals the value, served from a
    hash index (built on first use, maintained on mutation).  The
    order of the result is unspecified.
    @raise Invalid_argument if [col] is out of range. *)

val lookup_arr : t -> col:int -> Value.t -> Tuple.t array
(** {!lookup} returning a fresh array instead of a list: the
    evaluator's inner join loop iterates candidates by index without
    allocating a list spine per probe. *)

val lookup_cols : t -> (int * Value.t) list -> Tuple.t list
(** Composite probe: tuples matching every [(col, value)] binding at
    once, served from a multi-column hash index when the budget
    allows, degrading to an indexed-then-filter or filtered scan
    otherwise.  Duplicate bindings collapse; contradictory bindings
    yield [[]]; an empty binding list yields every tuple.
    @raise Invalid_argument if any column is out of range. *)

val lookup_cols_arr : t -> (int * Value.t) list -> Tuple.t array
(** {!lookup_cols} returning a fresh array — same semantics, built
    for the planner's inner loop. *)

val distinct_count : t -> col:int -> int
(** Number of distinct values in a column — the planner's selectivity
    statistic.  First call per column is O(n); later calls are O(1)
    because the counter is maintained incrementally.
    @raise Invalid_argument if [col] is out of range. *)

val set_index_budget : t -> int -> unit
(** Cap the number of distinct hash indexes this relation may hold
    (clamped to >= 0; 0 disables index building entirely). *)

val index_budget : t -> int

val index_count : t -> int
(** Number of indexes currently built. *)

val remove : t -> Tuple.t -> bool
(** [true] iff the tuple was present. *)

val clear : t -> unit

val to_list : t -> Tuple.t list
(** Tuples in {!Tuple.compare} order (cached until the next
    mutation). *)

val to_array : t -> Tuple.t array
(** Fresh array of the tuples in {!Tuple.compare} order. *)

val to_seq : t -> Tuple.t Seq.t

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Tuple.t -> unit) -> t -> unit

val copy : t -> t

type bound_op = Blt | Ble | Bgt | Bge | Beq
(** Sargable predicate shapes a scan can push into chunk pruning:
    [cell op constant] on one column, constants packed (see
    {!Intern}). *)

type packed_view = {
  pv_arity : int;
  pv_cell : int -> int -> int;
      (** [pv_cell col row] is the packed value (see {!Intern}) stored
          at a column of a live row. *)
  pv_all : unit -> int array * int;
      (** Live row ids as [(ids, n)]; only the first [n] entries are
          meaningful. *)
  pv_probe : int list -> int array -> int array * int;
      (** [pv_probe cols] prepares a probe on a fixed column set
          (ascending, duplicate-free); applying it to the packed
          values aligned with [cols] yields the matching row ids as
          [(ids, n)].  The access path (index, index-then-filter, or
          scan, budget permitting) is resolved on first use. *)
  pv_prune : (int * bound_op * int) list -> (int array * int * int * int) option;
      (** [pv_prune bounds] is the zone-map scan: live row ids from
          exactly the chunks whose per-column [min, max] intervals can
          satisfy every [(col, op, packed_const)] bound, as
          [(ids, n, chunks_visited, chunks_pruned)].  Sound, not
          complete: surviving rows still need the row-level predicate
          check.  Zone maps build lazily on the first call and are
          maintained on insert; removals only leave them conservative
          (wider).  [None] when the view has no chunk structure to
          prune (e.g. {!Codb_cq.Eval.rows_of_list} feeds) — callers
          fall back to [pv_all]. *)
}
(** Zero-copy packed access for the evaluator's join core: candidate
    sets are row ids, matching is integer comparison against column
    cells, and probes take packed values straight to the id-keyed
    indexes — no boxing, no string hashing, no per-probe copy.  Hit
    arrays may be internal index buckets: treat them as read-only,
    and as invalidated by the next mutation of the relation. *)

val packed_view : t -> packed_view

val equal_contents : t -> t -> bool

val size_bytes : t -> int

val pp : t Fmt.t
