(** A relation instance: a set of tuples conforming to a schema.

    Set semantics throughout, as required by the update algorithm's
    duplicate-suppression step.  Mutating operations return the tuples
    that were actually new, which is exactly the delta the algorithm
    propagates further. *)

module Tuple_set : Set.S with type elt = Tuple.t

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val name : t -> string

val cardinal : t -> int

val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val insert : t -> Tuple.t -> bool
(** [insert r t] adds [t]; [true] iff [t] was not already present.
    @raise Invalid_argument if [t] does not conform to the schema or
    contains holes (holes are a wire-only representation). *)

val insert_all : t -> Tuple.t list -> Tuple.t list
(** Insert many tuples; returns the sub-list that was actually new, in
    the input order. *)

val subsumed : t -> Tuple.t -> bool
(** Null-aware membership: is the (possibly hole-carrying) incoming
    tuple subsumed by some stored tuple?  See {!Tuple.subsumes}. *)

val lookup : t -> col:int -> Value.t -> Tuple.t list
(** Tuples whose [col]-th attribute equals the value, served from a
    lazily built hash index (invalidated on mutation, rebuilt on the
    next probe).  The order of the result is unspecified.
    @raise Invalid_argument if [col] is out of range. *)

val remove : t -> Tuple.t -> bool
(** [true] iff the tuple was present. *)

val clear : t -> unit

val to_list : t -> Tuple.t list
(** Tuples in {!Tuple.compare} order. *)

val to_seq : t -> Tuple.t Seq.t

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Tuple.t -> unit) -> t -> unit

val copy : t -> t

val equal_contents : t -> t -> bool

val size_bytes : t -> int

val pp : t Fmt.t
