exception Schema_mismatch of string

let fail fmt = Printf.ksprintf (fun m -> raise (Schema_mismatch m)) fmt

let attr_position schema name =
  match Schema.position schema name with
  | Some pos -> pos
  | None -> fail "no attribute %s in %s" name schema.Schema.rel_name

let attrs_of schema = schema.Schema.attrs

let copy_into schema tuples =
  let result = Relation.create schema in
  List.iter (fun t -> ignore (Relation.insert result t)) tuples;
  result

let select pred r =
  copy_into (Relation.schema r) (List.filter pred (Relation.to_list r))

let select_eq r ~attr value =
  let pos = attr_position (Relation.schema r) attr in
  copy_into (Relation.schema r) (Relation.lookup r ~col:pos value)

let project r ~attrs =
  if attrs = [] then fail "projection on no attributes";
  let schema = Relation.schema r in
  let positions = List.map (attr_position schema) attrs in
  let kept =
    List.map (fun pos -> List.nth (attrs_of schema) pos) positions
  in
  let out_schema =
    Schema.make
      ("pi(" ^ schema.Schema.rel_name ^ ")")
      (List.map (fun a -> (a.Schema.attr_name, a.Schema.attr_ty)) kept)
  in
  let project_tuple t = Array.of_list (List.map (fun pos -> t.(pos)) positions) in
  copy_into out_schema (List.map project_tuple (Relation.to_list r))

let rename r mapping =
  let schema = Relation.schema r in
  let renamed =
    List.map
      (fun a ->
        let name =
          Option.value ~default:a.Schema.attr_name (List.assoc_opt a.Schema.attr_name mapping)
        in
        (name, a.Schema.attr_ty))
      (attrs_of schema)
  in
  let out_schema =
    try Schema.make schema.Schema.rel_name renamed
    with Invalid_argument m -> fail "%s" m
  in
  copy_into out_schema (Relation.to_list r)

let same_layout r1 r2 =
  let a1 = attrs_of (Relation.schema r1) and a2 = attrs_of (Relation.schema r2) in
  List.length a1 = List.length a2
  && List.for_all2
       (fun x y -> String.equal x.Schema.attr_name y.Schema.attr_name && x.Schema.attr_ty = y.Schema.attr_ty)
       a1 a2

let require_same_layout op r1 r2 =
  if not (same_layout r1 r2) then
    fail "%s: incompatible schemas %s and %s" op
      (Schema.to_string (Relation.schema r1))
      (Schema.to_string (Relation.schema r2))

let union r1 r2 =
  require_same_layout "union" r1 r2;
  copy_into (Relation.schema r1) (Relation.to_list r1 @ Relation.to_list r2)

let diff r1 r2 =
  require_same_layout "diff" r1 r2;
  copy_into (Relation.schema r1)
    (List.filter (fun t -> not (Relation.mem r2 t)) (Relation.to_list r1))

let inter r1 r2 =
  require_same_layout "inter" r1 r2;
  copy_into (Relation.schema r1)
    (List.filter (Relation.mem r2) (Relation.to_list r1))

(* Attribute list for a two-relation result: keep the left names,
   prefix right names that clash with any left name. *)
let combined_attrs ?(skip_right = []) r1 r2 =
  let s1 = Relation.schema r1 and s2 = Relation.schema r2 in
  let left = attrs_of s1 in
  let left_names = List.map (fun a -> a.Schema.attr_name) left in
  let right =
    List.filter
      (fun a -> not (List.mem a.Schema.attr_name skip_right))
      (attrs_of s2)
  in
  let right_named =
    List.map
      (fun a ->
        let name =
          if List.mem a.Schema.attr_name left_names then
            s2.Schema.rel_name ^ "." ^ a.Schema.attr_name
          else a.Schema.attr_name
        in
        (name, a.Schema.attr_ty))
      right
  in
  ( List.map (fun a -> (a.Schema.attr_name, a.Schema.attr_ty)) left @ right_named,
    List.map (fun a -> attr_position s2 a.Schema.attr_name) right )

let product r1 r2 =
  let s1 = Relation.schema r1 and s2 = Relation.schema r2 in
  let attrs, right_positions = combined_attrs r1 r2 in
  let out_schema =
    Schema.make (s1.Schema.rel_name ^ "*" ^ s2.Schema.rel_name) attrs
  in
  let rows =
    List.concat_map
      (fun t1 ->
        List.map
          (fun t2 ->
            Array.append t1 (Array.of_list (List.map (fun p -> t2.(p)) right_positions)))
          (Relation.to_list r2))
      (Relation.to_list r1)
  in
  copy_into out_schema rows

let join_on r1 r2 pairs ~merge_shared =
  let s1 = Relation.schema r1 and s2 = Relation.schema r2 in
  let pairs_pos =
    List.map
      (fun (a1, a2) -> (attr_position s1 a1, attr_position s2 a2))
      pairs
  in
  let skip_right = if merge_shared then List.map snd pairs else [] in
  let attrs, right_positions = combined_attrs ~skip_right r1 r2 in
  let out_schema =
    Schema.make (s1.Schema.rel_name ^ "|x|" ^ s2.Schema.rel_name) attrs
  in
  let matches t1 t2 =
    List.for_all (fun (p1, p2) -> Value.equal t1.(p1) t2.(p2)) pairs_pos
  in
  let rows =
    List.concat_map
      (fun t1 ->
        List.filter_map
          (fun t2 ->
            if matches t1 t2 then
              Some
                (Array.append t1
                   (Array.of_list (List.map (fun p -> t2.(p)) right_positions)))
            else None)
          (Relation.to_list r2))
      (Relation.to_list r1)
  in
  copy_into out_schema rows

let natural_join r1 r2 =
  let names1 = Schema.attr_names (Relation.schema r1) in
  let names2 = Schema.attr_names (Relation.schema r2) in
  let shared = List.filter (fun n -> List.mem n names2) names1 in
  if shared = [] then product r1 r2
  else join_on r1 r2 (List.map (fun n -> (n, n)) shared) ~merge_shared:true

let equi_join r1 r2 ~on = join_on r1 r2 on ~merge_shared:false
