module Tuple_set = Set.Make (Tuple)

type t = {
  schema : Schema.t;
  mutable tuples : Tuple_set.t;
  (* lazily built per-column hash indexes; dropped wholesale on any
     mutation and rebuilt on the next probe *)
  indexes : (int, (Value.t, Tuple.t list) Hashtbl.t) Hashtbl.t;
}

let create schema = { schema; tuples = Tuple_set.empty; indexes = Hashtbl.create 4 }

let schema r = r.schema

let name r = r.schema.Schema.rel_name

let cardinal r = Tuple_set.cardinal r.tuples

let is_empty r = Tuple_set.is_empty r.tuples

let mem r t = Tuple_set.mem t r.tuples

let invalidate_indexes r = Hashtbl.reset r.indexes

let check_insertable r t =
  if Tuple.has_hole t then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple with holes in %s (instantiate first)"
         (name r));
  if not (Schema.conforms r.schema t) then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple %s does not conform to %s"
         (Tuple.to_string t)
         (Schema.to_string r.schema))

let insert r t =
  check_insertable r t;
  if Tuple_set.mem t r.tuples then false
  else begin
    r.tuples <- Tuple_set.add t r.tuples;
    invalidate_indexes r;
    true
  end

let insert_all r ts = List.filter (insert r) ts

let subsumed r incoming =
  if Tuple.has_hole incoming then
    Tuple_set.exists (fun stored -> Tuple.subsumes stored incoming) r.tuples
  else Tuple_set.mem incoming r.tuples

let remove r t =
  if Tuple_set.mem t r.tuples then begin
    r.tuples <- Tuple_set.remove t r.tuples;
    invalidate_indexes r;
    true
  end
  else false

let clear r =
  r.tuples <- Tuple_set.empty;
  invalidate_indexes r

let to_list r = Tuple_set.elements r.tuples

let to_seq r = Tuple_set.to_seq r.tuples

let fold f r init = Tuple_set.fold f r.tuples init

let iter f r = Tuple_set.iter f r.tuples

let copy r = { r with tuples = r.tuples; indexes = Hashtbl.create 4 }

let equal_contents r1 r2 = Tuple_set.equal r1.tuples r2.tuples

let size_bytes r = fold (fun t acc -> acc + Tuple.size_bytes t) r 0

let build_index r col =
  let index = Hashtbl.create (max 16 (cardinal r)) in
  let add t =
    let key = t.(col) in
    let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
    Hashtbl.replace index key (t :: existing)
  in
  Tuple_set.iter add r.tuples;
  Hashtbl.replace r.indexes col index;
  index

let lookup r ~col value =
  if col < 0 || col >= Schema.arity r.schema then
    invalid_arg
      (Printf.sprintf "Relation.lookup: column %d out of range for %s" col (name r));
  let index =
    match Hashtbl.find_opt r.indexes col with
    | Some index -> index
    | None -> build_index r col
  in
  Option.value ~default:[] (Hashtbl.find_opt index value)

let pp ppf r =
  Fmt.pf ppf "@[<v 2>%s [%d tuples]%a@]" (name r) (cardinal r)
    Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf "@,%a" Tuple.pp t))
    (to_list r)
