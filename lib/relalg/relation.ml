(* Columnar storage engine on interned values.

   Tuples live as flat packed ints (see [Intern]) in per-column
   write-once chunk arrays; a row is a slot index shared by every
   column.  A presence bitmap marks removed slots dead (their storage
   is reclaimed on [clear]).  All probing — membership, hash indexes,
   column statistics, subsumption — happens on packed ints: equality
   is integer equality, hashing never walks a string.

   Boxed views are materialised lazily, one canonical [Tuple.t] per
   row, memoised for the relation's lifetime, so repeated probes
   allocate only result spines, never tuples.  [to_list] keeps the
   seed's sorted order (and caches it) so iteration-order-dependent
   behaviour is unchanged.

   [copy] snapshots in O(columns): full chunks are write-once and
   shared between the copy and the original; only the partial tail
   chunk of each column (and the presence bitmap / row index) is
   cloned.  Like the seed, a copy starts with no hash indexes. *)

module Tuple_set = Set.Make (Tuple)

(* ---- chunked write-once stores -------------------------------------- *)

let chunk_shift = 12

let chunk_size = 1 lsl chunk_shift

let chunk_mask = chunk_size - 1

module Ichunks = struct
  type t = { mutable chunks : int array array; mutable len : int }

  let create () = { chunks = [||]; len = 0 }

  let get t i = t.chunks.(i lsr chunk_shift).(i land chunk_mask)

  let push t v =
    let slot = t.len land chunk_mask in
    if slot = 0 then begin
      let outer = t.len lsr chunk_shift in
      if outer = Array.length t.chunks then begin
        let grown = Array.make (max 4 (2 * outer)) [||] in
        Array.blit t.chunks 0 grown 0 outer;
        t.chunks <- grown
      end;
      t.chunks.(outer) <- Array.make chunk_size 0
    end;
    t.chunks.(t.len lsr chunk_shift).(slot) <- v;
    t.len <- t.len + 1

  (* Share full (write-once) chunks, clone only the partial tail. *)
  let snapshot t =
    let chunks = Array.copy t.chunks in
    if t.len land chunk_mask <> 0 then begin
      let tail = t.len lsr chunk_shift in
      chunks.(tail) <- Array.copy chunks.(tail)
    end;
    { chunks; len = t.len }
end

module Tchunks = struct
  (* same layout for memoised boxed rows; [[||]] marks "not yet
     materialised" (a real tuple is never empty: schemas have >= 1
     attribute) *)
  type t = { mutable chunks : Tuple.t array array; mutable len : int }

  let absent : Tuple.t = [||]

  let create () = { chunks = [||]; len = 0 }

  let get t i = t.chunks.(i lsr chunk_shift).(i land chunk_mask)

  let set t i v = t.chunks.(i lsr chunk_shift).(i land chunk_mask) <- v

  let push t v =
    let slot = t.len land chunk_mask in
    if slot = 0 then begin
      let outer = t.len lsr chunk_shift in
      if outer = Array.length t.chunks then begin
        let grown = Array.make (max 4 (2 * outer)) [||] in
        Array.blit t.chunks 0 grown 0 outer;
        t.chunks <- grown
      end;
      t.chunks.(outer) <- Array.make chunk_size absent
    end;
    t.chunks.(t.len lsr chunk_shift).(slot) <- v;
    t.len <- t.len + 1

  let snapshot t =
    let chunks = Array.copy t.chunks in
    if t.len land chunk_mask <> 0 then begin
      let tail = t.len lsr chunk_shift in
      chunks.(tail) <- Array.copy chunks.(tail)
    end;
    { chunks; len = t.len }
end

(* growable row-id vectors: index buckets *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let data = Array.make (max 4 (2 * t.len)) 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  (* order inside a bucket is unspecified: swap-remove is O(1) *)
  let remove t v =
    let rec find i = if i >= t.len then -1 else if t.data.(i) = v then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then begin
      t.len <- t.len - 1;
      t.data.(i) <- t.data.(t.len)
    end
end

(* ---- hashing --------------------------------------------------------- *)

let combine h p = ((h * 486187739) + Intern.hash p) land max_int

(* ---- indexes --------------------------------------------------------- *)

type index = {
  ix_cols : int array;  (* probed columns, ascending *)
  ix_single : bool;  (* single-column: keyed by the packed value itself,
                        exact, no post-probe verification *)
  ix_tbl : (int, Ivec.t) Hashtbl.t;
}

(* Per-chunk [min, max] summaries of one column's packed values (a
   zone map).  Bounds cover every slot ever written in the chunk, dead
   ones included: removals never shrink an interval, so a stale zone
   map is only ever *wider* than the live data — pruning stays sound,
   it just skips less. *)
type zcol = {
  mutable zc_mins : int array;
  mutable zc_maxs : int array;
  mutable zc_chunks : int;  (* summarised chunk count *)
}

type t = {
  schema : Schema.t;
  arity : int;
  cols : Ichunks.t array;  (* packed values, one chunk store per column *)
  mutable boxed : Tchunks.t;  (* memoised canonical boxed rows *)
  mutable live : Bytes.t;  (* presence bitmap over row slots *)
  mutable nrows : int;  (* total slots, including dead ones *)
  mutable card : int;
  mutable row_index : (int, int list) Hashtbl.t;  (* content hash -> slots *)
  indexes : (int list, index) Hashtbl.t;
  mutable index_budget : int;
  (* per-column distinct-value counters keyed by packed value: built on
     the first [distinct_count] call, maintained incrementally after *)
  mutable col_counts : (int, int) Hashtbl.t option array;
  (* per-column zone maps: built on the first [pv_prune] touching the
     column, maintained incrementally after *)
  mutable zones : zcol option array;
  mutable sorted_cache : Tuple.t list option;
  mutable live_cache : int array option;  (* live row ids, insertion order *)
}

let default_index_budget = 16

let create schema =
  let arity = Schema.arity schema in
  {
    schema;
    arity;
    cols = Array.init arity (fun _ -> Ichunks.create ());
    boxed = Tchunks.create ();
    live = Bytes.make 64 '\000';
    nrows = 0;
    card = 0;
    row_index = Hashtbl.create 64;
    indexes = Hashtbl.create 4;
    index_budget = default_index_budget;
    col_counts = Array.make arity None;
    zones = Array.make arity None;
    sorted_cache = None;
    live_cache = None;
  }

let schema r = r.schema

let name r = r.schema.Schema.rel_name

let cardinal r = r.card

let is_empty r = r.card = 0

(* ---- presence bitmap ------------------------------------------------- *)

let is_live r row = Char.code (Bytes.unsafe_get r.live (row lsr 3)) land (1 lsl (row land 7)) <> 0

let set_live r row =
  let b = row lsr 3 in
  if b >= Bytes.length r.live then begin
    let grown = Bytes.make (max (2 * Bytes.length r.live) (b + 1)) '\000' in
    Bytes.blit r.live 0 grown 0 (Bytes.length r.live);
    r.live <- grown
  end;
  Bytes.set r.live b (Char.chr (Char.code (Bytes.get r.live b) lor (1 lsl (row land 7))))

let clear_live r row =
  let b = row lsr 3 in
  Bytes.set r.live b (Char.chr (Char.code (Bytes.get r.live b) land lnot (1 lsl (row land 7))))

let iter_live r f =
  for row = 0 to r.nrows - 1 do
    if is_live r row then f row
  done

(* ---- packed row access ----------------------------------------------- *)

let cell r col row = Ichunks.get r.cols.(col) row

let pack_tuple (t : Tuple.t) = Array.map Intern.pack t

let packed_hash (packed : int array) =
  let h = ref (Array.length packed) in
  for c = 0 to Array.length packed - 1 do
    h := combine !h packed.(c)
  done;
  !h

let row_matches r packed row =
  let rec loop c = c >= r.arity || (cell r c row = packed.(c) && loop (c + 1)) in
  loop 0

(* The live slot holding exactly [packed], or -1. *)
let find_row r packed =
  if Array.length packed <> r.arity then -1
  else
    match Hashtbl.find_opt r.row_index (packed_hash packed) with
    | None -> -1
    | Some bucket ->
        let rec scan = function
          | [] -> -1
          | row :: rest ->
              if is_live r row && row_matches r packed row then row else scan rest
        in
        scan bucket

(* canonical boxed view of a live row, memoised *)
let boxed_row r row =
  let b = Tchunks.get r.boxed row in
  if b != Tchunks.absent then b
  else begin
    let t = Array.init r.arity (fun c -> Intern.unpack (cell r c row)) in
    Tchunks.set r.boxed row t;
    t
  end

(* ---- index maintenance ----------------------------------------------- *)

let index_key ix r row =
  if ix.ix_single then cell r ix.ix_cols.(0) row
  else begin
    let h = ref (Array.length ix.ix_cols) in
    Array.iter (fun c -> h := combine !h (cell r c row)) ix.ix_cols;
    !h
  end

let index_add ix r row =
  let key = index_key ix r row in
  let bucket =
    match Hashtbl.find_opt ix.ix_tbl key with
    | Some b -> b
    | None ->
        let b = Ivec.create () in
        Hashtbl.add ix.ix_tbl key b;
        b
  in
  Ivec.push bucket row

let index_remove ix r row =
  let key = index_key ix r row in
  match Hashtbl.find_opt ix.ix_tbl key with
  | None -> ()
  | Some bucket ->
      Ivec.remove bucket row;
      if bucket.Ivec.len = 0 then Hashtbl.remove ix.ix_tbl key

(* Widen a built zone map with a freshly appended slot.  Slots are
   appended strictly in order, so a new chunk always starts exactly at
   [zc_chunks]. *)
let zone_note z v row =
  let chunk = row lsr chunk_shift in
  if chunk >= z.zc_chunks then begin
    if chunk >= Array.length z.zc_mins then begin
      let cap = max 4 (2 * Array.length z.zc_mins) in
      let mins = Array.make cap 0 and maxs = Array.make cap 0 in
      Array.blit z.zc_mins 0 mins 0 z.zc_chunks;
      Array.blit z.zc_maxs 0 maxs 0 z.zc_chunks;
      z.zc_mins <- mins;
      z.zc_maxs <- maxs
    end;
    z.zc_mins.(chunk) <- v;
    z.zc_maxs.(chunk) <- v;
    z.zc_chunks <- chunk + 1
  end
  else begin
    if Intern.compare v z.zc_mins.(chunk) < 0 then z.zc_mins.(chunk) <- v;
    if Intern.compare v z.zc_maxs.(chunk) > 0 then z.zc_maxs.(chunk) <- v
  end

let note_insert r row =
  r.card <- r.card + 1;
  r.sorted_cache <- None;
  r.live_cache <- None;
  Hashtbl.iter (fun _ ix -> index_add ix r row) r.indexes;
  Array.iteri
    (fun col counts ->
      match counts with
      | None -> ()
      | Some counts ->
          let v = cell r col row in
          let n = Option.value ~default:0 (Hashtbl.find_opt counts v) in
          Hashtbl.replace counts v (n + 1))
    r.col_counts;
  Array.iteri
    (fun col z ->
      match z with None -> () | Some z -> zone_note z (cell r col row) row)
    r.zones

let note_remove r row =
  r.card <- r.card - 1;
  r.sorted_cache <- None;
  r.live_cache <- None;
  Hashtbl.iter (fun _ ix -> index_remove ix r row) r.indexes;
  Array.iteri
    (fun col counts ->
      match counts with
      | None -> ()
      | Some counts -> (
          let v = cell r col row in
          match Hashtbl.find_opt counts v with
          | Some n when n > 1 -> Hashtbl.replace counts v (n - 1)
          | Some _ -> Hashtbl.remove counts v
          | None -> ()))
    r.col_counts

(* ---- mutation -------------------------------------------------------- *)

let set_index_budget r budget = r.index_budget <- max 0 budget

let index_budget r = r.index_budget

let index_count r = Hashtbl.length r.indexes

let check_insertable r t =
  if Tuple.has_hole t then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple with holes in %s (instantiate first)"
         (name r));
  if not (Schema.conforms r.schema t) then
    invalid_arg
      (Printf.sprintf "Relation.insert: tuple %s does not conform to %s"
         (Tuple.to_string t)
         (Schema.to_string r.schema))

let insert r t =
  check_insertable r t;
  let packed = pack_tuple t in
  let h = packed_hash packed in
  let present =
    match Hashtbl.find_opt r.row_index h with
    | None -> false
    | Some bucket ->
        List.exists (fun row -> is_live r row && row_matches r packed row) bucket
  in
  if present then false
  else begin
    let row = r.nrows in
    for c = 0 to r.arity - 1 do
      Ichunks.push r.cols.(c) packed.(c)
    done;
    Tchunks.push r.boxed Tchunks.absent;
    r.nrows <- row + 1;
    set_live r row;
    Hashtbl.replace r.row_index h
      (row :: Option.value ~default:[] (Hashtbl.find_opt r.row_index h));
    note_insert r row;
    true
  end

let insert_all r ts = List.filter (insert r) ts

let mem r t = find_row r (pack_tuple t) >= 0

let remove r t =
  let packed = pack_tuple t in
  let row = find_row r packed in
  if row < 0 then false
  else begin
    note_remove r row;
    clear_live r row;
    let h = packed_hash packed in
    (match Hashtbl.find_opt r.row_index h with
    | None -> ()
    | Some bucket -> (
        match List.filter (fun row' -> row' <> row) bucket with
        | [] -> Hashtbl.remove r.row_index h
        | bucket' -> Hashtbl.replace r.row_index h bucket'));
    (* dead slots keep their column storage until [clear]; removals are
       rare (mirror retractions, tests) and slots are never reused *)
    true
  end

let clear r =
  Array.iteri (fun c _ -> r.cols.(c) <- Ichunks.create ()) (Array.make r.arity ());
  r.boxed <- Tchunks.create ();
  r.live <- Bytes.make 64 '\000';
  r.nrows <- 0;
  r.card <- 0;
  r.row_index <- Hashtbl.create 64;
  Hashtbl.reset r.indexes;
  r.col_counts <- Array.make r.arity None;
  r.zones <- Array.make r.arity None;
  r.sorted_cache <- None;
  r.live_cache <- None

(* ---- iteration ------------------------------------------------------- *)

let to_list r =
  match r.sorted_cache with
  | Some l -> l
  | None ->
      let acc = ref [] in
      iter_live r (fun row -> acc := boxed_row r row :: !acc);
      let sorted = List.sort Tuple.compare !acc in
      r.sorted_cache <- Some sorted;
      sorted

let to_array r = Array.of_list (to_list r)

let to_seq r = List.to_seq (to_list r)

let fold f r init = List.fold_left (fun acc t -> f t acc) init (to_list r)

let iter f r = List.iter f (to_list r)

let copy r =
  {
    r with
    cols = Array.map Ichunks.snapshot r.cols;
    boxed = Tchunks.snapshot r.boxed;
    live = Bytes.copy r.live;
    row_index = Hashtbl.copy r.row_index;
    indexes = Hashtbl.create 4;
    col_counts = Array.make r.arity None;
    zones = Array.make r.arity None;
  }

let equal_contents r1 r2 =
  r1.card = r2.card
  && (r1.arity = r2.arity || r1.card = 0)
  &&
  let ok = ref true in
  iter_live r1 (fun row ->
      if !ok then begin
        let packed = Array.init r1.arity (fun c -> cell r1 c row) in
        if find_row r2 packed < 0 then ok := false
      end);
  !ok

let size_bytes r = fold (fun t acc -> acc + Tuple.size_bytes t) r 0

(* ---- probes ---------------------------------------------------------- *)

let check_col r col =
  if col < 0 || col >= r.arity then
    invalid_arg
      (Printf.sprintf "Relation.lookup: column %d out of range for %s" col (name r))

let build_index r cols =
  let ix_cols = Array.of_list cols in
  let ix =
    {
      ix_cols;
      ix_single = Array.length ix_cols = 1;
      ix_tbl = Hashtbl.create (max 16 (r.card / 4));
    }
  in
  iter_live r (fun row -> index_add ix r row);
  Hashtbl.replace r.indexes cols ix;
  ix

(* The index on [cols], existing or freshly built — [None] when the
   per-relation budget is exhausted (callers fall back to a scan). *)
let index_for r cols =
  match Hashtbl.find_opt r.indexes cols with
  | Some ix -> Some ix
  | None ->
      if Hashtbl.length r.indexes < r.index_budget then Some (build_index r cols)
      else None

let packed_bindings_match r bindings row =
  List.for_all (fun (col, pv) -> cell r col row = pv) bindings

(* Row ids matching [bindings] through [ix]; multi-column indexes key
   by combined hash, so candidates are verified cell-by-cell. *)
let index_rows ix r (bindings : (int * int) list) =
  let key =
    if ix.ix_single then snd (List.hd bindings)
    else begin
      let h = ref (Array.length ix.ix_cols) in
      List.iter (fun (_, pv) -> h := combine !h pv) bindings;
      !h
    end
  in
  match Hashtbl.find_opt ix.ix_tbl key with
  | None -> [||]
  | Some bucket ->
      if ix.ix_single then Array.sub bucket.Ivec.data 0 bucket.Ivec.len
      else begin
        let out = ref [] and n = ref 0 in
        for i = bucket.Ivec.len - 1 downto 0 do
          let row = bucket.Ivec.data.(i) in
          if packed_bindings_match r bindings row then begin
            out := row :: !out;
            incr n
          end
        done;
        if !n = bucket.Ivec.len then Array.sub bucket.Ivec.data 0 bucket.Ivec.len
        else Array.of_list !out
      end

let scan_rows r (bindings : (int * int) list) =
  let acc = ref [] in
  iter_live r (fun row ->
      if packed_bindings_match r bindings row then acc := row :: !acc);
  Array.of_list (List.rev !acc)

(* Normalise a probe: sort by column, drop duplicate bindings, detect
   contradictions ([None] = provably empty). *)
let normalise_bindings bindings =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) bindings in
  let rec dedup = function
    | (c1, v1) :: ((c2, v2) :: _ as rest) when c1 = c2 ->
        if (v1 : int) = v2 then dedup rest else None
    | b :: rest -> Option.map (fun tail -> b :: tail) (dedup rest)
    | [] -> Some []
  in
  dedup sorted

(* Core probe on packed bindings (normalised, non-empty): row ids. *)
let probe_rows r bindings =
  let cols = List.map fst bindings in
  match index_for r cols with
  | Some ix -> index_rows ix r bindings
  | None -> (
      (* budget exhausted: probe an already-built single-column index
         if one covers a bound column, filter the rest *)
      let covered =
        List.find_opt (fun (col, _) -> Hashtbl.mem r.indexes [ col ]) bindings
      in
      match covered with
      | Some ((_, _) as b) -> (
          match Hashtbl.find_opt r.indexes [ fst b ] with
          | Some ix ->
              let candidates = index_rows ix r [ b ] in
              let rest = List.filter (fun (c, _) -> c <> fst b) bindings in
              if rest = [] then candidates
              else begin
                let out = ref [] in
                for i = Array.length candidates - 1 downto 0 do
                  let row = candidates.(i) in
                  if packed_bindings_match r rest row then out := row :: !out
                done;
                Array.of_list !out
              end
          | None -> scan_rows r bindings)
      | None -> scan_rows r bindings)

let rows_to_tuples r rows = Array.to_list (Array.map (boxed_row r) rows)

let lookup r ~col value =
  check_col r col;
  rows_to_tuples r (probe_rows r [ (col, Intern.pack value) ])

let lookup_arr r ~col value =
  check_col r col;
  Array.map (boxed_row r) (probe_rows r [ (col, Intern.pack value) ])

let lookup_cols_rows r bindings =
  List.iter (fun (col, _) -> check_col r col) bindings;
  match normalise_bindings (List.map (fun (c, v) -> (c, Intern.pack v)) bindings) with
  | None -> Some [||]
  | Some [] -> None (* no bindings: every tuple *)
  | Some bindings -> Some (probe_rows r bindings)

let lookup_cols r bindings =
  match lookup_cols_rows r bindings with
  | None -> to_list r
  | Some rows -> rows_to_tuples r rows

let lookup_cols_arr r bindings =
  match lookup_cols_rows r bindings with
  | None -> to_array r
  | Some rows -> Array.map (boxed_row r) rows

(* Subsumption probe.  A stored tuple (hole-free by
   [check_insertable]) subsumes [incoming] iff it agrees with every
   non-hole position, so the candidates are exactly the rows matching
   the ground columns.  All-hole tuples are subsumed by anything; a
   non-conforming arity can match nothing (stored tuples always have
   the schema's arity). *)
let subsumed r incoming =
  if not (Tuple.has_hole incoming) then find_row r (pack_tuple incoming) >= 0
  else if Array.length incoming <> r.arity then false
  else begin
    let ground = ref [] in
    Array.iteri
      (fun col v -> if not (Value.is_hole v) then ground := (col, Intern.pack v) :: !ground)
      incoming;
    match normalise_bindings !ground with
    | None -> false
    | Some [] -> not (is_empty r)
    | Some bindings -> Array.length (probe_rows r bindings) > 0
  end

(* ---- packed view ------------------------------------------------------ *)

type bound_op = Blt | Ble | Bgt | Bge | Beq

type packed_view = {
  pv_arity : int;
  pv_cell : int -> int -> int;
  pv_all : unit -> int array * int;
  pv_probe : int list -> int array -> int array * int;
  pv_prune : (int * bound_op * int) list -> (int array * int * int * int) option;
}

let no_rows = ([||], 0)

(* Live row ids in insertion order, cached until the next mutation.
   The cached array is never mutated, so copies may share it. *)
let live_rows r =
  match r.live_cache with
  | Some rows -> rows
  | None ->
      let rows = Array.make r.card 0 in
      let i = ref 0 in
      iter_live r (fun row ->
          rows.(!i) <- row;
          incr i);
      r.live_cache <- Some rows;
      rows

(* The column's zone map, built on first use over every slot written
   so far (dead ones included — see [zcol]) and maintained by
   [note_insert] afterwards. *)
let zone_for r col =
  match r.zones.(col) with
  | Some z -> z
  | None ->
      let nchunks = (r.nrows + chunk_mask) lsr chunk_shift in
      let z =
        {
          zc_mins = Array.make (max 4 nchunks) 0;
          zc_maxs = Array.make (max 4 nchunks) 0;
          zc_chunks = nchunks;
        }
      in
      let store = r.cols.(col) in
      for chunk = 0 to nchunks - 1 do
        let base = chunk lsl chunk_shift in
        let last = min (base + chunk_mask) (r.nrows - 1) in
        let lo = ref (Ichunks.get store base) and hi = ref (Ichunks.get store base) in
        for i = base + 1 to last do
          let v = Ichunks.get store i in
          if Intern.compare v !lo < 0 then lo := v;
          if Intern.compare v !hi > 0 then hi := v
        done;
        z.zc_mins.(chunk) <- !lo;
        z.zc_maxs.(chunk) <- !hi
      done;
      r.zones.(col) <- Some z;
      z

(* Can a chunk whose column interval is [lo, hi] contain a row
   satisfying [cell op k]?  [Intern.compare] is consistent with
   {!Value.compare}, and a row only passes an order predicate when
   [Value.compare] orders it against the constant (nulls and holes
   compare false), so the interval test never skips a satisfying
   row. *)
let zone_admits ~lo ~hi op k =
  match op with
  | Beq -> Intern.compare k lo >= 0 && Intern.compare k hi <= 0
  | Blt -> Intern.compare lo k < 0
  | Ble -> Intern.compare lo k <= 0
  | Bgt -> Intern.compare hi k > 0
  | Bge -> Intern.compare hi k >= 0

(* Chunk-skip scan: live row ids from chunks whose zone intervals can
   satisfy every bound, plus (visited, pruned) chunk counts.  Live
   rows come in ascending slot order, so each chunk is tested once. *)
let prune_rows r bounds =
  let rows = live_rows r in
  let n = Array.length rows in
  if n = 0 then ([||], 0, 0, 0)
  else begin
    let zoned = List.map (fun (col, op, k) -> (zone_for r col, op, k)) bounds in
    let chunk_ok chunk =
      List.for_all
        (fun (z, op, k) ->
          chunk >= z.zc_chunks
          || zone_admits ~lo:z.zc_mins.(chunk) ~hi:z.zc_maxs.(chunk) op k)
        zoned
    in
    let out = Array.make n 0 in
    let m = ref 0 and visited = ref 0 and pruned = ref 0 in
    let cur = ref (-1) and keep = ref false in
    for i = 0 to n - 1 do
      let row = rows.(i) in
      let chunk = row lsr chunk_shift in
      if chunk <> !cur then begin
        cur := chunk;
        keep := chunk_ok chunk;
        if !keep then incr visited else incr pruned
      end;
      if !keep then begin
        out.(!m) <- row;
        incr m
      end
    done;
    (out, !m, !visited, !pruned)
  end

(* Resolve the access path for a fixed (sorted, distinct) column set
   once, returning a probe on the packed values aligned with [cols].
   Hit arrays may be internal index buckets shared with the store:
   they are read-only and invalidated by the next mutation. *)
let resolve_probe r cols =
  let ncols = List.length cols in
  let verify cols_arr vals row =
    let rec go j = j >= ncols || (cell r cols_arr.(j) row = vals.(j) && go (j + 1)) in
    go 0
  in
  let filter_rows cols_arr vals data len =
    let out = Array.make len 0 and n = ref 0 in
    for i = 0 to len - 1 do
      let row = data.(i) in
      if verify cols_arr vals row then begin
        out.(!n) <- row;
        incr n
      end
    done;
    (out, !n)
  in
  match index_for r cols with
  | Some ix when ix.ix_single ->
      fun vals ->
        (match Hashtbl.find_opt ix.ix_tbl vals.(0) with
        | None -> no_rows
        | Some bucket -> (bucket.Ivec.data, bucket.Ivec.len))
  | Some ix ->
      let cols_arr = ix.ix_cols in
      fun vals ->
        let h = ref (Array.length cols_arr) in
        for j = 0 to ncols - 1 do
          h := combine !h vals.(j)
        done;
        (match Hashtbl.find_opt ix.ix_tbl !h with
        | None -> no_rows
        | Some bucket ->
            (* combined-hash bucket: verify candidates cell-by-cell *)
            let data = bucket.Ivec.data and len = bucket.Ivec.len in
            let rec all_match i = i >= len || (verify cols_arr vals data.(i) && all_match (i + 1)) in
            if all_match 0 then (data, len) else filter_rows cols_arr vals data len)
  | None -> (
      (* budget exhausted: reuse a built single-column index if one
         covers a probed column, filtering the rest; else scan *)
      let cols_arr = Array.of_list cols in
      let covered =
        let rec find j =
          if j >= ncols then None
          else
            match Hashtbl.find_opt r.indexes [ cols_arr.(j) ] with
            | Some ix -> Some (j, ix)
            | None -> find (j + 1)
        in
        find 0
      in
      match covered with
      | Some (j, ix) ->
          fun vals ->
            (match Hashtbl.find_opt ix.ix_tbl vals.(j) with
            | None -> no_rows
            | Some bucket ->
                if ncols = 1 then (bucket.Ivec.data, bucket.Ivec.len)
                else filter_rows cols_arr vals bucket.Ivec.data bucket.Ivec.len)
      | None ->
          fun vals ->
            let out = ref [] and n = ref 0 in
            iter_live r (fun row ->
                if verify cols_arr vals row then begin
                  out := row :: !out;
                  incr n
                end);
            let data = Array.make (max 1 !n) 0 in
            List.iteri (fun i row -> data.(!n - 1 - i) <- row) !out;
            (data, !n))

let packed_view r =
  {
    pv_arity = r.arity;
    pv_cell = (fun col row -> cell r col row);
    pv_all = (fun () ->
        let rows = live_rows r in
        (rows, Array.length rows));
    pv_probe =
      (fun cols ->
        (* resolve lazily so an unexercised probe builds no index,
           matching the boxed path's first-probe behaviour *)
        let resolved = ref None in
        fun vals ->
          let probe =
            match !resolved with
            | Some f -> f
            | None ->
                let f = resolve_probe r cols in
                resolved := Some f;
                f
          in
          probe vals);
    pv_prune = (fun bounds -> Some (prune_rows r bounds));
  }

let distinct_count r ~col =
  check_col r col;
  match r.col_counts.(col) with
  | Some counts -> Hashtbl.length counts
  | None -> (
      (* a single-column index already knows the answer for free *)
      match Hashtbl.find_opt r.indexes [ col ] with
      | Some ix -> Hashtbl.length ix.ix_tbl
      | None ->
          let counts = Hashtbl.create (max 16 (r.card / 4)) in
          iter_live r (fun row ->
              let v = cell r col row in
              let n = Option.value ~default:0 (Hashtbl.find_opt counts v) in
              Hashtbl.replace counts v (n + 1));
          r.col_counts.(col) <- Some counts;
          Hashtbl.length counts)

let pp ppf r =
  Fmt.pf ppf "@[<v 2>%s [%d tuples]%a@]" (name r) (cardinal r)
    Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf "@,%a" Tuple.pp t))
    (to_list r)
