exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Split a CSV line into raw fields, honouring double-quoted strings. *)
let split_fields line_no line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let n = String.length line in
  let rec field i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
          push ();
          field (i + 1)
      | '"' -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          field (i + 1)
  and quoted i =
    if i >= n then fail line_no "unterminated string"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' ->
          (* Keep a marker so that the typed parser knows the field was
             quoted (hence a string even if it looks numeric). *)
          field (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  and push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  and finish () =
    push ();
    List.rev !fields
  in
  field 0

let parse_null line_no raw =
  (* #N<id>@<rule> *)
  match String.index_opt raw '@' with
  | None -> fail line_no "malformed null literal %s" raw
  | Some at -> (
      let id_part = String.sub raw 2 (at - 2) in
      let rule = String.sub raw (at + 1) (String.length raw - at - 1) in
      match int_of_string_opt id_part with
      | Some null_id -> Value.Null { null_id; null_rule = rule }
      | None -> fail line_no "malformed null id in %s" raw)

let parse_value line_no ty raw =
  let raw = String.trim raw in
  if String.length raw >= 2 && raw.[0] = '#' && raw.[1] = 'N' then parse_null line_no raw
  else
    match ty with
    | Value.Tint -> (
        match int_of_string_opt raw with
        | Some i -> Value.Int i
        | None -> fail line_no "expected int, got %s" raw)
    | Value.Tfloat -> (
        match float_of_string_opt raw with
        | Some f -> Value.Float f
        | None -> fail line_no "expected float, got %s" raw)
    | Value.Tbool -> (
        match bool_of_string_opt raw with
        | Some b -> Value.Bool b
        | None -> fail line_no "expected bool, got %s" raw)
    | Value.Tstring -> Value.Str raw

let parse_line schema line_no line =
  let raws = split_fields line_no line in
  let attrs = schema.Schema.attrs in
  if List.length raws <> List.length attrs then
    fail line_no "expected %d fields, got %d" (List.length attrs) (List.length raws);
  let values = List.map2 (fun a raw -> parse_value line_no a.Schema.attr_ty raw) attrs raws in
  Array.of_list values

let load_string schema text =
  let lines = String.split_on_char '\n' text in
  let parse (line_no, acc) line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '#' then (line_no + 1, acc)
    else (line_no + 1, parse_line schema line_no trimmed :: acc)
  in
  let _, tuples = List.fold_left parse (1, []) lines in
  List.rev tuples

let load_into db rel_name text =
  let rel = Database.relation db rel_name in
  let tuples = load_string (Relation.schema rel) text in
  List.length (Database.insert_all db rel_name tuples)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let dump_value = function
  | Value.Int i -> string_of_int i
  | Value.Float f -> string_of_float f
  | Value.Str s -> escape_string s
  | Value.Bool b -> string_of_bool b
  | Value.Null n -> Printf.sprintf "#N%d@%s" n.Value.null_id n.Value.null_rule
  | Value.Hole i -> Printf.sprintf "_%d" i

let dump_tuple t = String.concat "," (List.map dump_value (Array.to_list t))

let dump rel = String.concat "\n" (List.map dump_tuple (Relation.to_list rel))

let dump_database db =
  let dump_rel name =
    Printf.sprintf "# relation %s\n%s" name (dump (Database.relation db name))
  in
  String.concat "\n" (List.map dump_rel (Database.rel_names db))

let section_header line =
  let prefix = "# relation " in
  let n = String.length prefix in
  if String.length line > n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let load_database db text =
  let lines = String.split_on_char '\n' text in
  let load (line_no, current, count) line =
    let trimmed = String.trim line in
    match section_header trimmed with
    | Some rel ->
        if not (Database.has_relation db rel) then
          fail line_no "unknown relation %s" rel;
        (line_no + 1, Some rel, count)
    | None ->
        if trimmed = "" || (String.length trimmed > 0 && trimmed.[0] = '#') then
          (line_no + 1, current, count)
        else begin
          match current with
          | None -> fail line_no "tuple outside any '# relation' section"
          | Some rel ->
              let schema = Relation.schema (Database.relation db rel) in
              let tuple = parse_line schema line_no trimmed in
              let added = if Database.insert db rel tuple then 1 else 0 in
              (line_no + 1, current, count + added)
        end
  in
  let _, _, count = List.fold_left load (1, None, 0) lines in
  count
