type attr = { attr_name : string; attr_ty : Value.ty }

type t = { rel_name : string; attrs : attr list }

let make rel_name pairs =
  if pairs = [] then
    invalid_arg (Printf.sprintf "Schema.make: relation %s has no attributes" rel_name);
  let names = List.map fst pairs in
  let distinct = List.sort_uniq String.compare names in
  if List.length distinct <> List.length names then
    invalid_arg (Printf.sprintf "Schema.make: duplicate attribute in %s" rel_name);
  { rel_name; attrs = List.map (fun (attr_name, attr_ty) -> { attr_name; attr_ty }) pairs }

let arity s = List.length s.attrs

let attr_names s = List.map (fun a -> a.attr_name) s.attrs

let position s name =
  let rec loop i = function
    | [] -> None
    | a :: rest -> if String.equal a.attr_name name then Some i else loop (i + 1) rest
  in
  loop 0 s.attrs

let conforms s t =
  (* allocation-free: this runs once per insert, on the bulk-load path *)
  Tuple.arity t = arity s
  &&
  let rec loop i = function
    | [] -> true
    | a :: rest -> Value.conforms a.attr_ty t.(i) && loop (i + 1) rest
  in
  loop 0 s.attrs

let equal s1 s2 =
  String.equal s1.rel_name s2.rel_name
  && List.length s1.attrs = List.length s2.attrs
  && List.for_all2
       (fun a b -> String.equal a.attr_name b.attr_name && a.attr_ty = b.attr_ty)
       s1.attrs s2.attrs

let pp_attr ppf a = Fmt.pf ppf "%s: %a" a.attr_name Value.pp_ty a.attr_ty

let pp ppf s =
  Fmt.pf ppf "%s(%a)" s.rel_name Fmt.(list ~sep:(any ", ") pp_attr) s.attrs

let to_string s = Fmt.str "%a" pp s
