(** Tuples are immutable arrays of {!Value.t}.

    Two notions of comparison matter in coDB:

    - {!compare}: exact lexicographic order, used by relation tuple
      sets;
    - {!subsumes}: null/hole-aware matching used by the duplicate
      suppression step of the global update algorithm.  A stored tuple
      [s] subsumes an incoming wire tuple [w] when they agree on every
      position where [w] carries a concrete value; a hole in [w] is an
      existential position, witnessed by {e any} stored value there
      (a concrete one as much as a marked null).  Dropping subsumed
      incoming tuples keeps the materialised instance minimal (no
      null-padded copies of facts already known) and is what makes the
      fix-point terminate in cyclic networks with existential head
      variables. *)

type t = Value.t array

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int
(** Content hash served by the intern table ({!Intern.hash} of each
    value's packed form): O(arity), never walks a string twice, and
    consistent with {!equal}.  Use this wherever tuples key a hash
    container — the polymorphic [Hashtbl.hash] walks every boxed
    string on every probe. *)

val canonical : t -> t
(** Every value rewritten to its shared interned box (see
    {!Intern.canonical}); physically the same tuple when it already is
    canonical.  Canonical tuples make [Value.equal]'s [==] fast path
    hit during joins. *)

val arity : t -> int

val size_bytes : t -> int
(** Wire size under the shared accounting model: a varint arity header
    plus {!Value.size_bytes} per value. *)

val has_hole : t -> bool

val has_null : t -> bool
(** Does the tuple contain a marked null?  Tuples without nulls are
    the {e certain} answers reported by the query engine. *)

val subsumes : t -> t -> bool
(** [subsumes stored incoming]: see the module documentation.  When
    [incoming] has no holes this degenerates to {!equal}. *)

val instantiate_holes : rule:string -> t -> t
(** Replace every hole with a fresh marked null labelled [rule].
    Distinct holes in the same tuple get distinct nulls; the same hole
    index occurring twice gets the same null. *)

val digest_value : int -> Value.t -> int
(** One FNV-1a-style mixing step over a value's {e content} (a string
    hashes its characters, a marked null its id) — independent of
    intern-slot numbering, so digests compare across processes and
    across domain counts. *)

val digest_fold : int -> t list -> int
(** Fold {!digest_value} over a tuple list in the given order (callers
    pass sorted answer lists).  The benches' answer-equality gates and
    the cross-domain equivalence tests share this one definition. *)

val digest : t list -> int
(** [digest_fold 0] over the list sorted by {!compare}: a canonical
    digest of a tuple {e set}. *)

val pp : t Fmt.t

val to_string : t -> string
