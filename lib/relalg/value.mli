(** Typed atomic values stored in coDB relations.

    Besides the usual scalar types, coDB needs two special kinds of
    values to implement GLAV coordination rules:

    - {e marked nulls} ([Null]): fresh labelled unknowns introduced when
      a coordination rule has existential variables in its head (see
      the paper, Section 3).  A marked null is equal only to itself.
    - {e holes} ([Hole]): positional placeholders used {e on the wire}
      for existential head positions.  A hole is never stored in a
      relation; the receiving node replaces every hole with a fresh
      marked null (or drops the tuple if it is subsumed by data it
      already has). *)

type null = {
  null_id : int;  (** globally unique identifier of the marked null *)
  null_rule : string;  (** id of the coordination rule that created it *)
}

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null of null  (** marked null: equal only to itself *)
  | Hole of int  (** wire-format placeholder for the [i]-th existential
                     head variable; never stored in a relation *)

(** Types of attributes, as declared in relation schemas.  A marked
    null is considered to conform to every type. *)
type ty = Tint | Tfloat | Tstring | Tbool

val compare : t -> t -> int
(** Total order used by tuple sets.  Values of distinct constructors
    are ordered by constructor; marked nulls are ordered by id. *)

val equal : t -> t -> bool

val type_of : t -> ty option
(** [type_of v] is [Some ty] for scalar values and [None] for marked
    nulls and holes (which conform to any type). *)

val conforms : ty -> t -> bool
(** Does the value inhabit the attribute type?  Nulls and holes
    conform to every type. *)

val is_null : t -> bool

val is_hole : t -> bool

val size_bytes : t -> int
(** Estimated wire size of the value, used by the network simulator
    and the statistics module to report data volumes. *)

val fresh_null : rule:string -> t
(** A fresh marked null, labelled with the id of the coordination rule
    that introduced it.  Freshness is global to the process. *)

val null_counter : unit -> int
(** Number of marked nulls generated so far (for tests and reports). *)

val reset_null_counter : unit -> unit
(** Reset the generator.  Only for tests and benchmarks that need
    reproducible null identifiers; never call it mid-computation. *)

val ty_of_string : string -> ty option

val string_of_ty : ty -> string

val pp : t Fmt.t

val pp_ty : ty Fmt.t

val to_string : t -> string
