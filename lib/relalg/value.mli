(** Typed atomic values stored in coDB relations.

    Besides the usual scalar types, coDB needs two special kinds of
    values to implement GLAV coordination rules:

    - {e marked nulls} ([Null]): fresh labelled unknowns introduced when
      a coordination rule has existential variables in its head (see
      the paper, Section 3).  A marked null is equal only to itself.
    - {e holes} ([Hole]): positional placeholders used {e on the wire}
      for existential head positions.  A hole is never stored in a
      relation; the receiving node replaces every hole with a fresh
      marked null (or drops the tuple if it is subsumed by data it
      already has). *)

type null = {
  null_id : int;  (** globally unique identifier of the marked null *)
  null_rule : string;  (** id of the coordination rule that created it *)
}

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null of null  (** marked null: equal only to itself *)
  | Hole of int  (** wire-format placeholder for the [i]-th existential
                     head variable; never stored in a relation *)

(** Types of attributes, as declared in relation schemas.  A marked
    null is considered to conform to every type. *)
type ty = Tint | Tfloat | Tstring | Tbool

val compare : t -> t -> int
(** Total order used by tuple sets.  Values of distinct constructors
    are ordered by constructor; marked nulls are ordered by id. *)

val equal : t -> t -> bool

val type_of : t -> ty option
(** [type_of v] is [Some ty] for scalar values and [None] for marked
    nulls and holes (which conform to any type). *)

val conforms : ty -> t -> bool
(** Does the value inhabit the attribute type?  Nulls and holes
    conform to every type. *)

val is_null : t -> bool

val is_hole : t -> bool

val varint_size : int -> int
(** Encoded size of a non-negative int as an LEB128 varint — the
    building block of the shared wire-size model below. *)

val zigzag_size : int -> int
(** Encoded size of a signed int under zigzag + varint, matching
    {!Codb_net.Codec.zigzag} exactly. *)

val size_bytes : t -> int
(** The {e shared} wire-size model: the exact compact-codec cost of
    the value when its strings are not yet in the per-message
    dictionary (one tag byte, varint lengths, zigzag integers).
    [Payload.size], the stats/report data-volume counters and the
    bench byte counters all delegate to this one function. *)

val fresh_null : rule:string -> t
(** A fresh marked null, labelled with the id of the coordination rule
    that introduced it.  Freshness is global to the process.
    @raise Invalid_argument while minting is frozen (see
    {!freeze_minting}). *)

val freeze_minting : bool -> unit
(** Freeze (or thaw) the minting of new value identities: while
    frozen, {!fresh_null} and first-time interning of a value
    ({!Intern}) raise [Invalid_argument].  The parallel runtime
    freezes minting for the span of each fanned-out batch — handler
    classification keeps minting handlers sequential, and the freeze
    turns any classification gap into a loud, deterministic failure
    instead of a cross-domain race on the id generators. *)

val minting_frozen : unit -> bool

val null_counter : unit -> int
(** Number of marked nulls generated so far (for tests and reports). *)

val reset_null_counter : unit -> unit
(** Reset the generator.  Only for tests and benchmarks that need
    reproducible null identifiers; never call it mid-computation.
    Also runs every {!on_reset_null_counter} hook, so caches keyed by
    null identity (the intern table) start a fresh epoch. *)

val on_reset_null_counter : (unit -> unit) -> unit
(** Register a hook run by {!reset_null_counter}.  Internal: used by
    {!Intern} at module-initialisation time. *)

val ty_of_string : string -> ty option

val string_of_ty : ty -> string

val pp : t Fmt.t

val pp_ty : ty Fmt.t

val to_string : t -> string
