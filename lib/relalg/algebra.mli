(** Classical relational-algebra operators over {!Relation}.

    This is the operation toolbox the paper assigns to the Wrapper
    ("when LDB does not support nested queries ... all required
    database operations (as join and project) are executed in
    Wrapper"): selection, projection, renaming, natural and equi-join,
    union, difference and intersection, each producing a fresh
    relation and leaving its operands untouched.

    The conjunctive-query evaluator ({!Codb_cq.Eval}) compiles whole
    query bodies directly and is what the coDB engines use; these
    operators are the stable public surface for programmatic
    manipulation of relation instances (examples, tools, tests). *)

exception Schema_mismatch of string

val select : (Tuple.t -> bool) -> Relation.t -> Relation.t
(** Same schema, the tuples satisfying the predicate. *)

val select_eq : Relation.t -> attr:string -> Value.t -> Relation.t
(** Selection on attribute equality (uses the column index).
    @raise Schema_mismatch on an unknown attribute. *)

val project : Relation.t -> attrs:string list -> Relation.t
(** Keep the given attributes, in the given order; duplicates collapse
    (set semantics).  The result relation is named
    ["π(<name>)"].  @raise Schema_mismatch on unknown attributes or an
    empty list. *)

val rename : Relation.t -> (string * string) list -> Relation.t
(** Rename attributes (missing names are left unchanged); the
    relation keeps its tuples.  @raise Schema_mismatch if the renaming
    creates duplicate attribute names. *)

val union : Relation.t -> Relation.t -> Relation.t
(** @raise Schema_mismatch unless both operands have identical
    attribute lists (names and types). *)

val diff : Relation.t -> Relation.t -> Relation.t

val inter : Relation.t -> Relation.t -> Relation.t

val product : Relation.t -> Relation.t -> Relation.t
(** Cartesian product; attribute names are prefixed with the operand
    relation names ([r.a]) when they clash. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Join on all shared attribute names (equality on values; marked
    nulls join only with themselves).  Shared attributes appear once.
    With no shared attributes this degenerates to {!product}. *)

val equi_join : Relation.t -> Relation.t -> on:(string * string) list -> Relation.t
(** Join on explicit attribute pairs (left attr, right attr); all
    attributes of both sides are kept (right side prefixed on
    clashes).  @raise Schema_mismatch on unknown attributes. *)
