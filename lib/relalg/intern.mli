(** Global value interning.

    Every {!Value.t} packs into a single tagged OCaml int
    ({!type:packed}): the low 3 bits carry the constructor, the upper
    bits either the value itself (small ints, bools, holes) or a slot
    in a process-global side table (strings, floats, marked nulls,
    overflow ints).  Packed values give the storage engine O(1)
    equality and hashing with no allocation, and {!unpack} returns
    {e canonical} boxed values — the same packed int always unpacks to
    the same physical object, so canonical values compare with [==]
    before any structural walk.

    [pack] identifies values exactly up to {!Value.compare}-equality:
    all NaN floats collapse, [-0.] collapses into [+0.], and marked
    nulls intern by [null_id] alone (the rule tag is provenance, not
    identity).  Tables only ever grow; their lifetime is the process,
    like [Value.fresh_null]'s counter. *)

type packed = int

val pack : Value.t -> packed
(** Intern (if needed) and pack.  Total: every value, including ints
    outside the 60-bit payload range, has a packed form. *)

val unpack : packed -> Value.t
(** The canonical boxed value.  [Value.equal (unpack (pack v)) v]
    always holds; physical identity holds between any two unpacks of
    the same packed int. *)

val canonical : Value.t -> Value.t
(** [unpack (pack v)] — rewrite a value to its shared canonical
    representative. *)

val equal : packed -> packed -> bool
(** Integer equality; agrees with {!Value.equal} on the unpacked
    values. *)

val compare : packed -> packed -> int
(** Allocation-free total order, consistent with {!Value.compare} on
    the unpacked values. *)

val hash : packed -> int
(** Avalanche hash of the packed word; non-negative.  Never reads the
    interned payload, so hashing a string value is O(1). *)

val is_hole : packed -> bool

val is_null : packed -> bool

val interned_strings : unit -> int
(** Number of distinct strings interned so far (for stats/benches). *)

val interned_values : unit -> int
(** Total side-table slots across all tables (strings, floats, nulls,
    overflow). *)
