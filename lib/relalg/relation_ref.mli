(** The {e seed} boxed relation implementation, kept as a reference:
    the differential-testing oracle for the columnar {!Relation} and
    the boxed baseline of the E19 scale benchmark.  Same surface and
    semantics as {!Relation}; production code should use {!Relation}.

    A relation instance: a set of tuples conforming to a schema.

    Set semantics throughout, as required by the update algorithm's
    duplicate-suppression step.  Mutating operations return the tuples
    that were actually new, which is exactly the delta the algorithm
    propagates further.

    Equality probes are served from hash indexes keyed by column
    sets.  Indexes are built lazily on the first probe and then
    maintained {e incrementally} by every insert/remove, so repeated
    probe/mutate cycles (the update fix-point) never rebuild them from
    scratch.  The number of distinct indexes per relation is bounded
    by a budget; past it, probes degrade to filtered scans.  The
    relation also keeps cheap statistics — O(1) cardinality and
    per-column distinct-value counts — for the cost-based query
    planner. *)

module Tuple_set : Set.S with type elt = Tuple.t

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val name : t -> string

val cardinal : t -> int
(** O(1): maintained incrementally, not recounted. *)

val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val insert : t -> Tuple.t -> bool
(** [insert r t] adds [t]; [true] iff [t] was not already present.
    Existing hash indexes and column statistics are updated in place.
    @raise Invalid_argument if [t] does not conform to the schema or
    contains holes (holes are a wire-only representation). *)

val insert_all : t -> Tuple.t list -> Tuple.t list
(** Insert many tuples; returns the sub-list that was actually new, in
    the input order. *)

val subsumed : t -> Tuple.t -> bool
(** Null-aware membership: is the (possibly hole-carrying) incoming
    tuple subsumed by some stored tuple?  See {!Tuple.subsumes}.
    Served by probing the hash index on the tuple's ground (non-hole)
    columns, so the cost is one bucket, not one scan; only an all-hole
    tuple degenerates to an emptiness check. *)

val lookup : t -> col:int -> Value.t -> Tuple.t list
(** Tuples whose [col]-th attribute equals the value, served from a
    hash index (built on first use, maintained on mutation).  The
    order of the result is unspecified.
    @raise Invalid_argument if [col] is out of range. *)

val lookup_cols : t -> (int * Value.t) list -> Tuple.t list
(** Composite probe: tuples matching every [(col, value)] binding at
    once, served from a multi-column hash index when the budget
    allows, degrading to an indexed-then-filter or filtered scan
    otherwise.  Duplicate bindings collapse; contradictory bindings
    yield [[]]; an empty binding list yields every tuple.
    @raise Invalid_argument if any column is out of range. *)

val distinct_count : t -> col:int -> int
(** Number of distinct values in a column — the planner's selectivity
    statistic.  First call per column is O(n); later calls are O(1)
    because the counter is maintained incrementally.
    @raise Invalid_argument if [col] is out of range. *)

val set_index_budget : t -> int -> unit
(** Cap the number of distinct hash indexes this relation may hold
    (clamped to >= 0; 0 disables index building entirely). *)

val index_budget : t -> int

val index_count : t -> int
(** Number of indexes currently built. *)

val remove : t -> Tuple.t -> bool
(** [true] iff the tuple was present. *)

val clear : t -> unit

val to_list : t -> Tuple.t list
(** Tuples in {!Tuple.compare} order. *)

val to_seq : t -> Tuple.t Seq.t

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Tuple.t -> unit) -> t -> unit

val copy : t -> t

val equal_contents : t -> t -> bool

val size_bytes : t -> int

val pp : t Fmt.t
