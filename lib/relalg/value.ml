type null = { null_id : int; null_rule : string }

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null of null
  | Hole of int

type ty = Tint | Tfloat | Tstring | Tbool

let constructor_rank = function
  | Int _ -> 0
  | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3
  | Null _ -> 4
  | Hole _ -> 5

let compare v1 v2 =
  match (v1, v2) with
  | Int a, Int b -> Stdlib.compare a b
  | Float a, Float b -> Stdlib.compare a b
  | Str a, Str b -> Stdlib.compare a b
  | Bool a, Bool b -> Stdlib.compare a b
  | Null a, Null b -> Stdlib.compare a.null_id b.null_id
  | Hole a, Hole b -> Stdlib.compare a b
  | (Int _ | Float _ | Str _ | Bool _ | Null _ | Hole _), _ ->
      Stdlib.compare (constructor_rank v1) (constructor_rank v2)

(* Physical equality first: values that went through the intern table
   (everything a relation stores) share one canonical box per distinct
   value, so the fast path hits without walking a string. *)
let equal v1 v2 = v1 == v2 || compare v1 v2 = 0

let type_of = function
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Bool _ -> Some Tbool
  | Null _ | Hole _ -> None

let conforms ty v =
  match type_of v with None -> true | Some ty' -> ty = ty'

let is_null = function Null _ -> true | Int _ | Float _ | Str _ | Bool _ | Hole _ -> false

let is_hole = function Hole _ -> true | Int _ | Float _ | Str _ | Bool _ | Null _ -> false

(* Wire-size accounting, shared by Payload's size estimator, the
   stats/report data-volume counters and the bench byte counters.  It
   mirrors the compact codec exactly for a value whose strings are not
   yet in the per-message dictionary: one tag byte, varint lengths,
   zigzag integers. *)
let varint_size n =
  let rec loop n acc = if n < 0x80 then acc else loop (n lsr 7) (acc + 1) in
  loop (if n < 0 then max_int else n) 1

let zigzag_size n = varint_size ((n lsl 1) lxor (n asr 62))

let size_bytes = function
  | Int n -> 1 + zigzag_size n
  | Float _ -> 9
  | Str s -> 2 + varint_size (String.length s) + String.length s
  | Bool _ -> 1
  | Null { null_id; null_rule } ->
      2 + zigzag_size null_id + varint_size (String.length null_rule)
      + String.length null_rule
  | Hole i -> 1 + zigzag_size i

let counter = ref 0

(* While the parallel runtime has a batch of handlers fanned out
   across domains, nothing may mint new value identities: null ids
   and intern slots are assigned by process-global insertion order,
   which only stays deterministic while exactly one domain assigns
   them.  The simulator freezes minting around the parallel phase;
   handlers that could mint (hole-carrying payloads) are classified
   out of parallel batches, so a trip of this flag is a
   classification bug surfacing loudly instead of a silent race. *)
let mint_frozen = Atomic.make false

let freeze_minting frozen = Atomic.set mint_frozen frozen

let minting_frozen () = Atomic.get mint_frozen

let fresh_null ~rule =
  if Atomic.get mint_frozen then
    invalid_arg "Value.fresh_null: minting is frozen during a parallel batch";
  incr counter;
  Null { null_id = !counter; null_rule = rule }

let null_counter () = !counter

(* Run by [reset_null_counter]: lets downstream caches keyed by null
   identity (the intern table) drop entries whose ids are about to be
   reissued.  Registered at module-init time, not per value. *)
let reset_hooks : (unit -> unit) list ref = ref []

let on_reset_null_counter hook = reset_hooks := hook :: !reset_hooks

let reset_null_counter () =
  counter := 0;
  List.iter (fun hook -> hook ()) !reset_hooks

let ty_of_string = function
  | "int" -> Some Tint
  | "float" -> Some Tfloat
  | "string" -> Some Tstring
  | "bool" -> Some Tbool
  | _ -> None

let string_of_ty = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null n -> Fmt.pf ppf "#N%d@%s" n.null_id n.null_rule
  | Hole i -> Fmt.pf ppf "_%d" i

let pp_ty ppf ty = Fmt.string ppf (string_of_ty ty)

let to_string v = Fmt.str "%a" pp v
