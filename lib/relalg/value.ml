type null = { null_id : int; null_rule : string }

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null of null
  | Hole of int

type ty = Tint | Tfloat | Tstring | Tbool

let constructor_rank = function
  | Int _ -> 0
  | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3
  | Null _ -> 4
  | Hole _ -> 5

let compare v1 v2 =
  match (v1, v2) with
  | Int a, Int b -> Stdlib.compare a b
  | Float a, Float b -> Stdlib.compare a b
  | Str a, Str b -> Stdlib.compare a b
  | Bool a, Bool b -> Stdlib.compare a b
  | Null a, Null b -> Stdlib.compare a.null_id b.null_id
  | Hole a, Hole b -> Stdlib.compare a b
  | (Int _ | Float _ | Str _ | Bool _ | Null _ | Hole _), _ ->
      Stdlib.compare (constructor_rank v1) (constructor_rank v2)

let equal v1 v2 = compare v1 v2 = 0

let type_of = function
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Bool _ -> Some Tbool
  | Null _ | Hole _ -> None

let conforms ty v =
  match type_of v with None -> true | Some ty' -> ty = ty'

let is_null = function Null _ -> true | Int _ | Float _ | Str _ | Bool _ | Hole _ -> false

let is_hole = function Hole _ -> true | Int _ | Float _ | Str _ | Bool _ | Null _ -> false

let size_bytes = function
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s
  | Bool _ -> 1
  | Null _ -> 8
  | Hole _ -> 2

let counter = ref 0

let fresh_null ~rule =
  incr counter;
  Null { null_id = !counter; null_rule = rule }

let null_counter () = !counter

let reset_null_counter () = counter := 0

let ty_of_string = function
  | "int" -> Some Tint
  | "float" -> Some Tfloat
  | "string" -> Some Tstring
  | "bool" -> Some Tbool
  | _ -> None

let string_of_ty = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null n -> Fmt.pf ppf "#N%d@%s" n.null_id n.null_rule
  | Hole i -> Fmt.pf ppf "_%d" i

let pp_ty ppf ty = Fmt.string ppf (string_of_ty ty)

let to_string v = Fmt.str "%a" pp v
