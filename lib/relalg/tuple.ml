type t = Value.t array

let compare t1 t2 =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  if n1 <> n2 then Stdlib.compare n1 n2
  else
    let rec loop i =
      if i >= n1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal t1 t2 = t1 == t2 || compare t1 t2 = 0

let arity = Array.length

(* Content hash through the intern table: every value hashes as its
   packed int, so hashing a tuple of strings is O(arity) with no
   string walk after the first interning.  Consistent with [equal] by
   injectivity of [Intern.pack] up to [Value.compare]. *)
let hash t =
  let h = ref (Array.length t) in
  for i = 0 to Array.length t - 1 do
    h := (!h * 486187739) + Intern.hash (Intern.pack t.(i))
  done;
  !h land max_int

(* Rewrite every value to its canonical interned box (shared, so
   [Value.equal]'s [==] fast path hits); identity when the tuple is
   already canonical. *)
let canonical t =
  let n = Array.length t in
  let rec first_fresh i =
    if i >= n then -1
    else
      let c = Intern.canonical t.(i) in
      if c == t.(i) then first_fresh (i + 1) else i
  in
  let i = first_fresh 0 in
  if i < 0 then t else Array.map Intern.canonical t

(* Wire-size model: varint tuple header plus the shared per-value
   accounting (see {!Value.size_bytes}). *)
let size_bytes t =
  Array.fold_left (fun acc v -> acc + Value.size_bytes v) (Value.varint_size (arity t)) t

let has_hole t = Array.exists Value.is_hole t

let has_null t = Array.exists Value.is_null t

let subsumes stored incoming =
  Array.length stored = Array.length incoming
  &&
  let rec loop i =
    if i >= Array.length stored then true
    else
      let ok =
        match incoming.(i) with
        | Value.Hole _ -> true
        | v -> Value.equal stored.(i) v
      in
      ok && loop (i + 1)
  in
  loop 0

let instantiate_holes ~rule t =
  if not (has_hole t) then t
  else begin
    (* The same hole index must map to the same fresh null within one
       tuple, so existential variables repeated in a rule head stay
       co-referent. *)
    let assigned = Hashtbl.create 4 in
    let instantiate = function
      | Value.Hole i -> (
          match Hashtbl.find_opt assigned i with
          | Some null -> null
          | None ->
              let null = Value.fresh_null ~rule in
              Hashtbl.add assigned i null;
              null)
      | v -> v
    in
    Array.map instantiate t
  end

(* FNV-1a-style content digest, independent of intern-slot numbering
   (a Str hashes its characters, a Null its id), so digests compare
   across processes and across domain counts.  Shared by the benches'
   answer-equality gates and the cross-domain equivalence tests. *)
let fnv h n = (h lxor n) * 0x100000001b3 land max_int

let digest_value h = function
  | Value.Int n -> fnv (fnv h 1) n
  | Value.Float f -> fnv (fnv h 2) (Int64.to_int (Int64.bits_of_float f))
  | Value.Str s -> String.fold_left (fun h c -> fnv h (Char.code c)) (fnv h 3) s
  | Value.Bool b -> fnv (fnv h 4) (Bool.to_int b)
  | Value.Null { Value.null_id; _ } -> fnv (fnv h 5) null_id
  | Value.Hole k -> fnv (fnv h 6) k

let digest_fold h tuples =
  (* order-sensitive: callers fold sorted answer lists *)
  List.fold_left (fun h t -> Array.fold_left digest_value (fnv h 17) t) h tuples

let digest tuples = digest_fold 0 (List.sort compare tuples)

let pp ppf t =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t
