let () =
  (* varint that overflows into the sign bit: 9 x 0xff then 0x7f *)
  let neg_count = "\xff\xff\xff\xff\xff\xff\xff\xff\x7f" in
  (match Codb_core.Payload.decode_tuples neg_count with
   | Ok _ -> print_endline "decode_tuples: Ok"
   | Error e -> print_endline ("decode_tuples: Error " ^ e)
   | exception e -> print_endline ("decode_tuples: RAISED " ^ Printexc.to_string e));
  (* Update_ack (tag 5) with an empty-string peer id: tag 5, then string: marker 0, len 0 *)
  let empty_peer = "\x05\x00\x00" in
  (match Codb_core.Payload.decode empty_peer with
   | Ok _ -> print_endline "decode: Ok"
   | Error e -> print_endline ("decode: Error " ^ e)
   | exception e -> print_endline ("decode: RAISED " ^ Printexc.to_string e))
